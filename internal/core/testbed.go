package core

import (
	"kite/internal/netpkt"
	"kite/internal/netstack"
	"kite/internal/nic"
	"kite/internal/nvme"
)

// Testbed reproduces Table 2's hardware: a server machine (Xeon E5-2695,
// 24 cores, 64 GB, Intel 82599ES 10GbE, Samsung 970 EVO Plus NVMe) running
// Xen, directly cabled to a client machine (Core i5-6600K, 4 cores, same
// NIC) that generates load. The server's NIC and NVMe are created
// PCI-assignable, ready for passthrough into driver domains.
type Testbed struct {
	System *System

	// Server-side passthrough devices.
	ServerNIC *nic.NIC
	NVMe      *nvme.Device

	// Client is the load-generator machine.
	Client *netstack.Host

	// Addresses used throughout the experiments.
	GuestIP  netpkt.IP
	ClientIP netpkt.IP
}

// NewTestbed assembles the two machines and the cable between them.
func NewTestbed(seed uint64) *Testbed { return newTestbed(NewSystem(seed)) }

// NewTestbedSharded assembles the same testbed on a sharded event core
// with one cluster shard per PV queue (plus shard 0 for everything else).
func NewTestbedSharded(seed uint64, queues int) *Testbed {
	return newTestbed(NewShardedSystem(seed, queues))
}

func newTestbed(sys *System) *Testbed {
	seed := sys.seed
	serverNIC := nic.New(sys.Eng, "ixgbe0", netpkt.MAC{0x90, 0xe2, 0xba, 0, 0, 0x10}, "03:00.0")
	client := netstack.NewHost(sys.Eng, netstack.HostConfig{
		Name: "client", CPUs: 4, IP: netpkt.IPv4(10, 0, 0, 2),
		MAC: netpkt.MAC{0x90, 0xe2, 0xba, 0, 0, 0x20}, BDF: "81:00.0",
		Costs: netstack.LinuxGuestCosts(), Seed: seed ^ 0xc11e,
		Pool: sys.Pool,
	})
	nic.Connect(serverNIC, client.NIC, nic.DefaultLink())
	dev := nvme.New(sys.Eng, nvme.Default970EvoPlus(), "04:00.0")
	return &Testbed{
		System:    sys,
		ServerNIC: serverNIC,
		NVMe:      dev,
		Client:    client,
		GuestIP:   netpkt.IPv4(10, 0, 0, 1),
		ClientIP:  netpkt.IPv4(10, 0, 0, 2),
	}
}

// NetworkRig is the common network-domain experiment setup: driver domain
// of the chosen kind, one guest attached, everything connected.
type NetworkRig struct {
	*Testbed
	ND    *NetworkDomain
	Guest *Guest
}

// NewNetworkRig builds the §5.3 setup and drives handshakes to ready.
func NewNetworkRig(kind DriverKind, seed uint64) (*NetworkRig, error) {
	return NewNetworkRigCfg(NetworkRigConfig{Kind: kind, Seed: seed})
}

// NetworkRigConfig tunes the network rig beyond the classic kind+seed
// pair; the zero value of the extra fields reproduces NewNetworkRig.
type NetworkRigConfig struct {
	Kind DriverKind
	Seed uint64
	// Queues requests a multi-queue vif. The backend advertises one queue
	// per driver-domain vCPU, so Queues > 1 implies VCPUs >= Queues for
	// full fan-out (VCPUs defaults to Queues when unset).
	Queues int
	// VCPUs overrides the driver domain's vCPU count.
	VCPUs int
}

// NewNetworkRigCfg builds the rig from the full config. Multi-queue rigs
// run on a sharded event core (one cluster shard per queue): the driver
// domain and the guest each get one vCPU per queue plus a misc/stack vCPU,
// and queue i of both ring ends is pinned to shard 1+i. Single-queue rigs
// keep the classic single-heap engine, byte-for-byte.
func NewNetworkRigCfg(cfg NetworkRigConfig) (*NetworkRig, error) {
	sharded := cfg.Queues > 1
	var tb *Testbed
	vcpus := cfg.VCPUs
	if sharded {
		tb = NewTestbedSharded(cfg.Seed, cfg.Queues)
		if vcpus == 0 {
			// One pinned vCPU per queue worker plus the same width again
			// for the bridge/misc path, so the bridge capacity scales with
			// the queue count exactly like the legacy Pick-anywhere rig.
			vcpus = 2 * cfg.Queues
		}
	} else {
		tb = NewTestbed(cfg.Seed)
	}
	nd, err := tb.System.CreateNetworkDomain(NetworkDomainConfig{
		Kind: cfg.Kind, NIC: tb.ServerNIC, VCPUs: vcpus,
	})
	if err != nil {
		return nil, err
	}
	guest, err := tb.System.CreateGuest(GuestConfig{
		Name: "domU", IP: tb.GuestIP, Net: nd, Seed: cfg.Seed,
		NetQueues: cfg.Queues,
	})
	if err != nil {
		return nil, err
	}
	rig := &NetworkRig{Testbed: tb, ND: nd, Guest: guest}
	if !tb.System.RunReady(guest.Ready, 500000) {
		return nil, errNotReady
	}
	return rig, nil
}

// StorageRig is the common storage-domain experiment setup (§5.4): driver
// domain of the chosen kind, one guest with a vbd and mounted filesystem.
type StorageRig struct {
	*Testbed
	SD    *StorageDomain
	Guest *Guest
}

// StorageRigConfig tunes the rig.
type StorageRigConfig struct {
	Kind       DriverKind
	Seed       uint64
	DiskBytes  int64 // vbd window (default 64 GiB)
	CacheBytes int64 // guest page cache (default 64 MiB)
	Tuning     *TuningKnobs
	// Queues requests a multi-queue vbd (blk-mq style). The backend
	// advertises one hardware queue per driver-domain vCPU, so VCPUs
	// defaults to Queues when Queues > 1.
	Queues int
	// VCPUs overrides the storage domain's vCPU count.
	VCPUs int
}

// TuningKnobs exposes blkback's design-choice toggles for ablations.
type TuningKnobs struct {
	Persistent, Indirect, Batch bool
}

// NewStorageRig builds the §5.4 setup.
func NewStorageRig(cfg StorageRigConfig) (*StorageRig, error) {
	tb := NewTestbed(cfg.Seed)
	vcpus := cfg.VCPUs
	if vcpus == 0 && cfg.Queues > 1 {
		vcpus = cfg.Queues
	}
	sdc := StorageDomainConfig{Kind: cfg.Kind, Device: tb.NVMe, VCPUs: vcpus}
	if cfg.Tuning != nil {
		costs := pickBlkCosts(cfg.Kind)
		costs.Persistent = cfg.Tuning.Persistent
		costs.Indirect = cfg.Tuning.Indirect
		costs.Batch = cfg.Tuning.Batch
		sdc.Tuning = &costs
	}
	sd, err := tb.System.CreateStorageDomain(sdc)
	if err != nil {
		return nil, err
	}
	disk := cfg.DiskBytes
	if disk == 0 {
		disk = 64 << 30
	}
	guest, err := tb.System.CreateGuest(GuestConfig{
		Name: "domU", Storage: sd, DiskBytes: disk,
		CacheBytes: cfg.CacheBytes, Seed: cfg.Seed,
		BlkQueues: cfg.Queues,
	})
	if err != nil {
		return nil, err
	}
	rig := &StorageRig{Testbed: tb, SD: sd, Guest: guest}
	if !tb.System.RunReady(guest.Ready, 500000) {
		return nil, errNotReady
	}
	return rig, nil
}
