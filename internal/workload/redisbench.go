package workload

import (
	"fmt"

	"kite/internal/apps"
	"kite/internal/netpkt"
	"kite/internal/netstack"
	"kite/internal/sim"
)

// RedisBenchResult reports one redis-benchmark run (Fig 9).
type RedisBenchResult struct {
	Op        string // "SET" or "GET"
	Threads   int
	Pipeline  int
	Ops       int
	OpsPerSec float64
}

// RedisBench runs totalOps operations of one kind (SET or GET) across
// threads connections with the given pipeline depth (redis-benchmark -P
// 1000 -c threads), using valueBytes values.
func RedisBench(client *netstack.Host, serverIP netpkt.IP, port uint16,
	op string, threads, pipeline, totalOps, valueBytes int, done func(RedisBenchResult)) {

	eng := client.Stack.Engine()
	value := make([]byte, valueBytes)
	sim.NewRand(0x4ed5).Bytes(value)

	start := eng.Now()
	issued := 0
	completed := 0
	finished := 0

	preload := func(then func()) {
		// redis-benchmark GET runs against existing keys: seed the
		// keyspace first (one connection, pipelined).
		client.Stack.Dial(serverIP, port, func(c *netstack.Conn, err error) {
			if err != nil {
				then()
				return
			}
			var batch []byte
			total := 0
			for id := 0; id < threads; id++ {
				for k := 0; k < 1000; k++ {
					batch = append(batch, apps.EncodeSet(fmt.Sprintf("key:%d:%d", id, k), value)...)
					total++
				}
			}
			var buf []byte
			got := 0
			c.OnData(func(b []byte) {
				buf = append(buf, b...)
				for {
					n := consumeKVReply(buf)
					if n == 0 {
						break
					}
					buf = buf[n:]
					got++
				}
				if got == total {
					c.Close()
					then()
				}
			})
			c.Send(batch)
		})
	}

	worker := func(id int) {
		client.Stack.Dial(serverIP, port, func(c *netstack.Conn, err error) {
			if err != nil {
				finished++
				return
			}
			var buf []byte
			pendingReplies := 0
			var pump func()
			pump = func() {
				if issued >= totalOps {
					if pendingReplies == 0 {
						c.Close()
						finished++
						if finished == threads {
							dur := eng.Now() - start
							res := RedisBenchResult{Op: op, Threads: threads,
								Pipeline: pipeline, Ops: completed}
							if dur > 0 {
								res.OpsPerSec = float64(completed) / dur.Seconds()
							}
							done(res)
						}
					}
					return
				}
				// Fill one pipeline batch.
				var batch []byte
				for i := 0; i < pipeline && issued < totalOps; i++ {
					key := fmt.Sprintf("key:%d:%d", id, issued%1000)
					if op == "SET" {
						batch = append(batch, apps.EncodeSet(key, value)...)
					} else {
						batch = append(batch, apps.EncodeGet(key)...)
					}
					issued++
					pendingReplies++
				}
				c.Send(batch)
			}
			c.OnData(func(b []byte) {
				buf = append(buf, b...)
				for {
					consumed := consumeKVReply(buf)
					if consumed == 0 {
						break
					}
					buf = buf[consumed:]
					pendingReplies--
					completed++
				}
				if pendingReplies == 0 {
					pump()
				}
			})
			pump()
		})
	}
	run := func() {
		start = eng.Now()
		for i := 0; i < threads; i++ {
			worker(i)
		}
	}
	if op == "GET" {
		preload(run)
	} else {
		run()
	}
}
