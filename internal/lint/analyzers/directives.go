// Directive comments are how source opts in and out of kitelint's rules:
//
//	//kite:hotpath         (func doc)  zero-allocation root; everything it
//	                                   statically calls in-module is checked
//	//kite:coldpath <why>  (func doc)  excluded from hot-path descent: runs
//	                                   only during warmup or on error paths,
//	                                   as proven by the runtime zero-alloc
//	                                   tests
//	//kite:deterministic   (pkg doc)   package promises bit-for-bit
//	                                   deterministic output; simdet applies
//	//kite:alloc-ok <why>  (line)      one statement may allocate (pool
//	                                   growth, high-water scratch, cache
//	                                   fill); the reason is mandatory
//	//kite:orderok <why>   (line)      a map range whose effect is order-
//	                                   insensitive or explicitly sorted
//	//kite:ringlink <op>   (func doc)  declares an intrusive-ring operation
//	                                   for ringlink: link|unlink|free with
//	                                   an optional handle arg index, or
//	                                   alloc for a handle-returning
//	                                   function
//	//kite:shared          (decl)      a package var, struct type, or field
//	                                   is a sanctioned cross-shard
//	                                   structure; shardsafe then audits its
//	                                   writers
//	//kite:shardok <why>   (line or    one write to shared state, or one
//	                        func doc)  whole function, states its side of
//	                                   the shard-ownership protocol
//	//kite:synccore <why>  (func doc)  barrier/worker machinery exempt from
//	                                   atomicscope: synchronization is its
//	                                   job
//
// A line directive covers the line it sits on, or — when written on its
// own line — the line directly below it.
package analyzers

import (
	"go/ast"
	"go/token"
	"strings"

	"kite/internal/lint/loader"
)

// directiveIndex resolves line directives for one package.
type directiveIndex struct {
	pkg *loader.Package
	// byFileLine maps file -> line -> directive names present.
	byFileLine map[*ast.File]map[int][]string
}

func newDirectiveIndex(pkg *loader.Package) *directiveIndex {
	idx := &directiveIndex{pkg: pkg, byFileLine: make(map[*ast.File]map[int][]string)}
	for _, f := range pkg.Files {
		lines := make(map[int][]string)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, ok := directiveName(c.Text)
				if !ok {
					continue
				}
				line := pkg.Fset.Position(c.Pos()).Line
				lines[line] = append(lines[line], name)
			}
		}
		idx.byFileLine[f] = lines
	}
	return idx
}

// directiveName extracts "alloc-ok" from "//kite:alloc-ok pool growth".
func directiveName(text string) (string, bool) {
	rest, ok := strings.CutPrefix(text, "//kite:")
	if !ok {
		return "", false
	}
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	return rest, rest != ""
}

// suppressed reports whether pos's line, or the line above it, carries the
// named directive in its file.
func (idx *directiveIndex) suppressed(pos token.Pos, name string) bool {
	f := idx.fileFor(pos)
	if f == nil {
		return false
	}
	line := idx.pkg.Fset.Position(pos).Line
	for _, l := range []int{line, line - 1} {
		for _, d := range idx.byFileLine[f][l] {
			if d == name {
				return true
			}
		}
	}
	return false
}

func (idx *directiveIndex) fileFor(pos token.Pos) *ast.File {
	for _, f := range idx.pkg.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// funcDirective reports whether a function declaration's doc comment
// carries the named directive.
func funcDirective(decl *ast.FuncDecl, name string) bool {
	return commentGroupHas(decl.Doc, name)
}

// pkgDirective reports whether any file's package doc carries the named
// directive.
func pkgDirective(pkg *loader.Package, name string) bool {
	for _, f := range pkg.Files {
		if commentGroupHas(f.Doc, name) {
			return true
		}
	}
	return false
}

func commentGroupHas(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if n, ok := directiveName(c.Text); ok && n == name {
			return true
		}
	}
	return false
}
