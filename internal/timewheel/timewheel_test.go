package timewheel

import (
	"testing"

	"kite/internal/sim"
)

// model is the reference table: key -> lastSeen.
type model map[uint64]sim.Time

// advance runs one aging pass over the wheel and checks the expired set
// against a full sweep of the model with the same cutoff.
func advance(t *testing.T, w *Wheel, m model, nodes map[uint64]Handle, cutoff sim.Time) {
	t.Helper()
	want := map[uint64]bool{}
	for k, seen := range m {
		if seen <= cutoff {
			want[k] = true
		}
	}
	got := map[uint64]bool{}
	w.Advance(cutoff,
		func(h Handle, key uint64) sim.Time {
			seen, ok := m[key]
			if !ok || nodes[key] != h {
				return Gone
			}
			return seen
		},
		func(key uint64) {
			got[key] = true
			delete(m, key)
			delete(nodes, key)
		})
	if len(got) != len(want) {
		t.Fatalf("cutoff %v: expired %v, want %v", cutoff, got, want)
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("cutoff %v: expired %v, want %v", cutoff, got, want)
		}
	}
}

// TestWheelMatchesSweep churns inserts, refreshes, deletes, and aging
// passes with varying cutoffs, requiring every pass to expire exactly the
// sweep set; refreshed entries must survive without any wheel call on the
// refresh path.
func TestWheelMatchesSweep(t *testing.T) {
	w := New(sim.Second, 64)
	m := model{}
	nodes := map[uint64]Handle{}
	rng := uint64(0x7EE1)
	rand := func(n int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(n))
	}
	now := sim.Time(0)
	nextKey := uint64(0)
	for round := 0; round < 200; round++ {
		now += sim.Time(rand(int(3*sim.Second))) + 1
		switch rand(3) {
		case 0: // insert a few
			for n := rand(4); n >= 0; n-- {
				k := nextKey
				nextKey++
				m[k] = now
				nodes[k] = w.Add(k, now)
			}
		case 1: // refresh random existing entries: lastSeen only, no wheel op
			for k := range m {
				if rand(2) == 0 {
					m[k] = now
				}
			}
		case 2: // delete one (orphans its node)
			for k := range m {
				delete(m, k)
				delete(nodes, k)
				break
			}
		}
		if rand(3) == 0 {
			maxIdle := sim.Time(rand(int(20*sim.Second)) + 1)
			advance(t, w, m, nodes, now-maxIdle-1)
		}
	}
	// Drain: everything must expire once idle long enough.
	now += 1000 * sim.Second
	advance(t, w, m, nodes, now)
	if len(m) != 0 {
		t.Fatalf("entries survived the final pass: %v", m)
	}
	if w.Len() != 0 {
		t.Fatalf("wheel still holds %d nodes after the final pass", w.Len())
	}
}

// TestWheelLongIdleRotation checks that an Advance far beyond a full
// rotation still visits every bucket exactly once and expires everything
// due.
func TestWheelLongIdleRotation(t *testing.T) {
	w := New(sim.Second, 8)
	m := model{}
	nodes := map[uint64]Handle{}
	for k := uint64(0); k < 50; k++ {
		at := sim.Time(k) * sim.Second / 3
		m[k] = at
		nodes[k] = w.Add(k, at)
	}
	advance(t, w, m, nodes, 10000*sim.Second)
	if w.Len() != 0 {
		t.Fatalf("wheel holds %d nodes, want 0", w.Len())
	}
}
