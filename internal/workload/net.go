// Package workload implements the paper's load generators: nuttcp, ping,
// netperf, memtier (Figs 6-7), ApacheBench (Fig 8), redis-benchmark
// (Fig 9), sysbench OLTP and fileio (Figs 10, 12, 13), dd (Fig 11), the
// filebench fileserver/mongodb/webserver personalities (Figs 14-16), and
// perfdhcp (§5.5). Each drives the simulated stack with the same request
// mix and parameters the paper uses and reports the same metrics.
package workload

import (
	"kite/internal/apps"
	"kite/internal/netpkt"
	"kite/internal/netstack"
	"kite/internal/sim"
)

// NuttcpResult reports the UDP throughput test (Fig 6).
type NuttcpResult struct {
	OfferedGbps  float64
	AchievedGbps float64
	LossPct      float64
	Datagrams    uint64
}

// nuttcpPort is the data port the receiver binds.
const nuttcpPort = 5101

// Nuttcp blasts UDP datagrams of bufBytes from the client at rateGbps for
// dur and measures goodput and loss at the receiver (nuttcp -u -w4m -l8k).
func Nuttcp(client *netstack.Host, server *netstack.Stack,
	rateGbps float64, bufBytes int, dur sim.Time, done func(NuttcpResult)) {

	eng := client.Stack.Engine()
	var rxBytes uint64
	var rxDatagrams uint64
	server.BindUDP(nuttcpPort, func(p netstack.UDPPacket) {
		rxBytes += uint64(len(p.Data))
		rxDatagrams++
	})

	var txDatagrams uint64
	payload := make([]byte, bufBytes)
	const tick = 250 * sim.Microsecond
	bytesPerTick := int64(rateGbps * 1e9 / 8 * tick.Seconds())
	var carry int64
	start := eng.Now()
	var pump func()
	pump = func() {
		if eng.Now()-start >= dur {
			// Drain time, then report.
			eng.After(5*sim.Millisecond, func() {
				server.UnbindUDP(nuttcpPort)
				elapsed := dur.Seconds()
				sent := float64(txDatagrams * uint64(bufBytes))
				res := NuttcpResult{
					OfferedGbps:  rateGbps,
					AchievedGbps: float64(rxBytes) * 8 / elapsed / 1e9,
					Datagrams:    rxDatagrams,
				}
				if sent > 0 {
					res.LossPct = 100 * (sent - float64(rxBytes)) / sent
				}
				done(res)
			})
			return
		}
		budget := bytesPerTick + carry
		for budget >= int64(bufBytes) {
			client.Stack.SendUDP(server.IP(), nuttcpPort, 5102, payload)
			txDatagrams++
			budget -= int64(bufBytes)
		}
		carry = budget
		eng.After(tick, pump)
	}
	pump()
}

// PingResult reports a ping sweep (Fig 7).
type PingResult struct {
	Count  int
	AvgRTT sim.Time
	MaxRTT sim.Time
}

// Ping sends count echo requests at the given interval (ping -c count -i
// interval) and reports the average RTT.
func Ping(from *netstack.Stack, to netpkt.IP, count int, interval sim.Time,
	payload int, done func(PingResult)) {

	eng := from.Engine()
	var total, max sim.Time
	got := 0
	var one func()
	one = func() {
		from.Ping(to, payload, func(rtt sim.Time) {
			total += rtt
			if rtt > max {
				max = rtt
			}
			got++
			if got == count {
				done(PingResult{Count: count, AvgRTT: total / sim.Time(count), MaxRTT: max})
				return
			}
			eng.After(interval, one)
		})
	}
	one()
}

// EchoServer installs a TCP echo responder (netperf's TCP_RR peer).
func EchoServer(stack *netstack.Stack, port uint16) error {
	return stack.Listen(port, func(c *netstack.Conn) {
		c.OnData(func(b []byte) { c.Send(b) })
	})
}

// NetperfResult reports the TCP_RR latency test (Fig 7).
type NetperfResult struct {
	Transactions int
	AvgLatency   sim.Time
}

// NetperfRR runs count 1-byte request/response transactions over one
// connection, paced at the given interval (the paper sends 1000 requests
// per second with even intervals).
func NetperfRR(client *netstack.Host, serverIP netpkt.IP, port uint16,
	count int, interval sim.Time, done func(NetperfResult)) {

	eng := client.Stack.Engine()
	client.Stack.Dial(serverIP, port, func(c *netstack.Conn, err error) {
		if err != nil {
			done(NetperfResult{})
			return
		}
		var total sim.Time
		var sentAt sim.Time
		n := 0
		var next func()
		c.OnData(func(b []byte) {
			total += eng.Now() - sentAt
			n++
			if n == count {
				done(NetperfResult{Transactions: n, AvgLatency: total / sim.Time(n)})
				return
			}
			eng.After(interval, next)
		})
		next = func() {
			sentAt = eng.Now()
			c.Send([]byte("r"))
		}
		next()
	})
}

// MemtierResult reports the memcached latency test (Fig 7).
type MemtierResult struct {
	Ops        int
	AvgLatency sim.Time
}

// Memtier runs ops operations with a 1:10 SET:GET ratio and valueBytes
// values against a KV server (memtier_benchmark --ratio=1:10 -d 8192).
func Memtier(client *netstack.Host, serverIP netpkt.IP, port uint16,
	ops, valueBytes int, conns int, done func(MemtierResult)) {

	eng := client.Stack.Engine()
	value := make([]byte, valueBytes)
	sim.NewRand(0x3317).Bytes(value)

	var total sim.Time
	completed := 0
	issued := 0
	finished := 0

	runConn := func() {
		client.Stack.Dial(serverIP, port, func(c *netstack.Conn, err error) {
			if err != nil {
				finished++
				return
			}
			var sentAt sim.Time
			var buf []byte
			seeded := false
			opIndex := 0
			next := func() {
				if issued >= ops {
					finished++
					if finished == conns {
						res := MemtierResult{Ops: completed}
						if completed > 0 {
							res.AvgLatency = total / sim.Time(completed)
						}
						done(res)
					}
					return
				}
				issued++
				opIndex++
				sentAt = eng.Now()
				if opIndex%11 == 0 { // 1 SET per 10 GETs
					c.Send(apps.EncodeSet("memtier-key", value))
				} else {
					c.Send(apps.EncodeGet("memtier-key"))
				}
			}
			c.OnData(func(b []byte) {
				buf = append(buf, b...)
				// One reply per op: OK line, VALUE+body, or NIL.
				for {
					consumed := consumeKVReply(buf)
					if consumed == 0 {
						return
					}
					buf = buf[consumed:]
					if !seeded {
						seeded = true
					} else {
						total += eng.Now() - sentAt
						completed++
					}
					next()
				}
			})
			// Seed the key first so GETs hit; its reply starts the loop.
			c.Send(apps.EncodeSet("memtier-key", value))
		})
	}
	for i := 0; i < conns; i++ {
		runConn()
	}
}

// consumeKVReply returns the byte length of one complete KV reply at the
// start of buf, or 0 if incomplete.
func consumeKVReply(buf []byte) int {
	nl := indexCRLF(buf)
	if nl < 0 {
		return 0
	}
	line := string(buf[:nl])
	switch {
	case line == "OK" || line == "NIL" || len(line) > 3 && line[:3] == "ERR":
		return nl + 2
	case len(line) > 6 && line[:6] == "VALUE ":
		var n int
		if _, err := sscanInt(line[6:], &n); err != nil {
			return nl + 2
		}
		total := nl + 2 + n + 2
		if len(buf) < total {
			return 0
		}
		return total
	default:
		return nl + 2
	}
}

func indexCRLF(b []byte) int {
	for i := 0; i+1 < len(b); i++ {
		if b[i] == '\r' && b[i+1] == '\n' {
			return i
		}
	}
	return -1
}

func sscanInt(s string, out *int) (int, error) {
	n := 0
	i := 0
	for ; i < len(s) && s[i] >= '0' && s[i] <= '9'; i++ {
		n = n*10 + int(s[i]-'0')
	}
	*out = n
	if i == 0 {
		return 0, errNoDigits
	}
	return i, nil
}

var errNoDigits = errDigits{}

type errDigits struct{}

func (errDigits) Error() string { return "workload: no digits" }
