package analyzers_test

import (
	"testing"

	"kite/internal/lint/analysistest"
	"kite/internal/lint/analyzers"
)

func TestPoolref(t *testing.T) {
	analysistest.Run(t, "kite/fixtures/poolref", "testdata/src/poolref", analyzers.Poolref)
}
