package core

import (
	"bytes"
	"fmt"
	"testing"

	"kite/internal/apps"
	"kite/internal/netpkt"
	"kite/internal/netstack"
	"kite/internal/nic"
	"kite/internal/sim"
	"kite/internal/xenbus"
)

func TestNetworkRigBothKinds(t *testing.T) {
	for _, kind := range []DriverKind{KindKite, KindLinux} {
		t.Run(kind.String(), func(t *testing.T) {
			rig, err := NewNetworkRig(kind, 1)
			if err != nil {
				t.Fatal(err)
			}
			var rtt sim.Time = -1
			rig.Client.Stack.Ping(rig.GuestIP, 56, func(d sim.Time) { rtt = d })
			if !rig.System.RunReady(func() bool { return rtt >= 0 }, 500000) {
				t.Fatal("ping never completed")
			}
			if rtt <= 0 || rtt > 2*sim.Millisecond {
				t.Fatalf("rtt = %v", rtt)
			}
		})
	}
}

func TestStorageRigBothKinds(t *testing.T) {
	for _, kind := range []DriverKind{KindKite, KindLinux} {
		t.Run(kind.String(), func(t *testing.T) {
			rig, err := NewStorageRig(StorageRigConfig{Kind: kind, Seed: 2, DiskBytes: 1 << 30})
			if err != nil {
				t.Fatal(err)
			}
			f, err := rig.Guest.FS.Create("test.dat")
			if err != nil {
				t.Fatal(err)
			}
			payload := make([]byte, 256<<10)
			sim.NewRand(9).Bytes(payload)
			var got []byte
			rig.Guest.FS.Write(f, 0, payload, func(err error) {
				if err != nil {
					t.Fatal(err)
				}
				rig.Guest.FS.Read(f, 0, len(payload), func(b []byte, err error) {
					if err != nil {
						t.Fatal(err)
					}
					got = b
				})
			})
			if !rig.System.RunReady(func() bool { return got != nil }, 2_000_000) {
				t.Fatal("fs round trip never completed")
			}
			if !bytes.Equal(got, payload) {
				t.Fatal("file data corrupted through the storage domain")
			}
		})
	}
}

func TestCombinedNetworkAndStorage(t *testing.T) {
	// One guest with both a vif and a vbd, each served by its own Kite
	// driver domain — the full Qubes-style decomposition.
	tb := NewTestbed(3)
	nd, err := tb.System.CreateNetworkDomain(NetworkDomainConfig{Kind: KindKite, NIC: tb.ServerNIC})
	if err != nil {
		t.Fatal(err)
	}
	sd, err := tb.System.CreateStorageDomain(StorageDomainConfig{Kind: KindKite, Device: tb.NVMe})
	if err != nil {
		t.Fatal(err)
	}
	guest, err := tb.System.CreateGuest(GuestConfig{
		Name: "domU", IP: tb.GuestIP, Net: nd,
		Storage: sd, DiskBytes: 1 << 30, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tb.System.RunReady(guest.Ready, 500000) {
		t.Fatal("combined guest never ready")
	}

	// Serve a file from disk over HTTP through both driver domains.
	srv, err := apps.NewHTTPServer(guest.Stack, 80)
	if err != nil {
		t.Fatal(err)
	}
	content := make([]byte, 64<<10)
	sim.NewRand(11).Bytes(content)
	f, _ := guest.FS.Create("index.bin")
	loaded := false
	guest.FS.Write(f, 0, content, func(err error) {
		guest.FS.Read(f, 0, len(content), func(b []byte, err error) {
			srv.AddFile("/index.bin", b)
			loaded = true
		})
	})
	if !tb.System.RunReady(func() bool { return loaded }, 2_000_000) {
		t.Fatal("content load never completed")
	}

	var resp []byte
	tb.Client.Stack.Dial(tb.GuestIP, 80, func(c *netstack.Conn, err error) {
		if err != nil {
			t.Fatal(err)
		}
		c.OnData(func(b []byte) { resp = append(resp, b...) })
		c.Send([]byte("GET /index.bin HTTP/1.1\r\n\r\n"))
	})
	if !tb.System.RunReady(func() bool {
		return bytes.Contains(resp, content[len(content)-64:])
	}, 3_000_000) {
		t.Fatal("HTTP-from-disk transfer incomplete")
	}
}

func TestDHCPDaemonVM(t *testing.T) {
	tb := NewTestbed(4)
	nd, err := tb.System.CreateNetworkDomain(NetworkDomainConfig{Kind: KindKite, NIC: tb.ServerNIC})
	if err != nil {
		t.Fatal(err)
	}
	vm, err := tb.System.CreateDHCPDaemonVM(nd, netpkt.IPv4(10, 0, 0, 53),
		netpkt.IPv4(10, 0, 0, 100), 50)
	if err != nil {
		t.Fatal(err)
	}
	if !tb.System.RunReady(vm.Guest.Ready, 500000) {
		t.Fatal("daemon VM never ready")
	}
	// The daemon VM must be a unikernel profile.
	if vm.Guest.Profile.Name != "kite-dhcp" {
		t.Fatalf("daemon profile = %s", vm.Guest.Profile.Name)
	}

	// DORA from the client machine over the bridge.
	mac := tb.Client.NIC.MAC()
	var acked netpkt.IP
	tb.Client.Stack.BindUDP(apps.DHCPClientPort, func(p netstack.UDPPacket) {
		m, err := apps.ParseDHCP(p.Data)
		if err != nil || m.ClientMAC != mac {
			return
		}
		switch m.MsgType {
		case apps.DHCPOffer:
			req := &apps.DHCPMessage{Op: 1, XID: 2, ClientMAC: mac,
				MsgType: apps.DHCPRequest, RequestedIP: m.YourIP}
			tb.Client.Stack.SendUDP(netpkt.BroadcastIP, apps.DHCPServerPort,
				apps.DHCPClientPort, req.Marshal())
		case apps.DHCPAck:
			acked = m.YourIP
		}
	})
	disc := &apps.DHCPMessage{Op: 1, XID: 1, ClientMAC: mac, MsgType: apps.DHCPDiscover}
	tb.Client.Stack.SendUDP(netpkt.BroadcastIP, apps.DHCPServerPort,
		apps.DHCPClientPort, disc.Marshal())
	if !tb.System.RunReady(func() bool { return acked != (netpkt.IP{}) }, 1_000_000) {
		t.Fatal("DORA through driver domain never completed")
	}
	if vm.Server.Leases() != 1 {
		t.Fatalf("leases = %d", vm.Server.Leases())
	}
}

func TestBootOptionDelaysService(t *testing.T) {
	tb := NewTestbed(5)
	nd, err := tb.System.CreateNetworkDomain(NetworkDomainConfig{
		Kind: KindKite, NIC: tb.ServerNIC, Boot: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if nd.Ready() {
		t.Fatal("booting domain ready immediately")
	}
	tb.System.Eng.RunUntil(6 * sim.Second)
	if nd.Ready() {
		t.Fatal("kite domain ready before its 7s boot")
	}
	tb.System.Eng.RunUntil(8 * sim.Second)
	if !nd.Ready() {
		t.Fatal("kite domain not ready after boot")
	}
	if len(nd.BootLog()) != len(nd.Profile.BootPhases) {
		t.Fatalf("boot log has %d phases", len(nd.BootLog()))
	}
}

func TestGuestCloseDetachesFromBridge(t *testing.T) {
	rig, err := NewNetworkRig(KindKite, 6)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rig.ND.Bridge.Ports()); got != 2 {
		t.Fatalf("bridge ports = %d", got)
	}
	rig.Guest.CloseNet(rig.Testbed.System)
	rig.Testbed.System.Eng.RunFor(10 * sim.Millisecond)
	if got := len(rig.ND.Bridge.Ports()); got != 1 {
		t.Fatalf("bridge ports after close = %d, want 1", got)
	}
	if got := len(rig.ND.Driver.VIFs()); got != 0 {
		t.Fatalf("vifs after close = %d, want 0", got)
	}
}

func TestDriverDomainRestartScenario(t *testing.T) {
	// Crash the Kite network domain, rebuild it (fast: 7s boot), reattach
	// the guest with a fresh vif, and verify traffic flows again — the
	// recovery story §5.2 motivates with fast boot times.
	rig, err := NewNetworkRig(KindKite, 7)
	if err != nil {
		t.Fatal(err)
	}
	sys := rig.Testbed.System
	if err := sys.HV.DestroyDomain(rig.ND.Dom.ID); err != nil {
		t.Fatal(err)
	}
	sys.Eng.RunFor(sim.Millisecond)

	// Build the replacement domain (with its 7 s boot) and replug the SAME
	// guest's vif onto it — no guest restart needed.
	nd2, err := sys.CreateNetworkDomain(NetworkDomainConfig{
		Kind: KindKite, NIC: rig.ServerNIC, Boot: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sys.RunReady(nd2.Ready, 1_000_000) {
		t.Fatal("replacement domain never booted")
	}
	if err := rig.Guest.ReattachNet(sys, nd2); err != nil {
		t.Fatal(err)
	}
	if !sys.RunReady(rig.Guest.Ready, 500000) {
		t.Fatal("replugged vif never connected")
	}
	var rtt sim.Time = -1
	rig.Client.Stack.Ping(rig.GuestIP, 56, func(d sim.Time) { rtt = d })
	if !sys.RunReady(func() bool { return rtt >= 0 }, 500000) {
		t.Fatal("ping after restart never completed")
	}
	// The whole outage window is bounded by the 7 s boot.
	if sys.Eng.Now() > 9*sim.Second {
		t.Fatalf("recovery took %v, want ~7 s", sys.Eng.Now())
	}
}

func TestVbdWindowsDoNotOverlap(t *testing.T) {
	tb := NewTestbed(8)
	sd, _ := tb.System.CreateStorageDomain(StorageDomainConfig{Kind: KindKite, Device: tb.NVMe})
	g1, err := tb.System.CreateGuest(GuestConfig{Name: "g1", Storage: sd, DiskBytes: 1 << 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := tb.System.CreateGuest(GuestConfig{Name: "g2", Storage: sd, DiskBytes: 1 << 30, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !tb.System.RunReady(func() bool { return g1.Ready() && g2.Ready() }, 500000) {
		t.Fatal("guests never ready")
	}
	// Writes at the same guest-relative sector must not collide.
	a := bytes.Repeat([]byte{0xAA}, 4096)
	b := bytes.Repeat([]byte{0xBB}, 4096)
	okA, okB := false, false
	g1.Disk.WriteSectors(0, a, func(err error) { okA = err == nil })
	g2.Disk.WriteSectors(0, b, func(err error) { okB = err == nil })
	tb.System.Eng.RunFor(10 * sim.Millisecond)
	if !okA || !okB {
		t.Fatal("writes failed")
	}
	var backA, backB []byte
	g1.Disk.ReadSectors(0, 4096, func(d []byte, _ error) { backA = append([]byte(nil), d...) })
	g2.Disk.ReadSectors(0, 4096, func(d []byte, _ error) { backB = append([]byte(nil), d...) })
	tb.System.Eng.RunFor(10 * sim.Millisecond)
	if !bytes.Equal(backA, a) || !bytes.Equal(backB, b) {
		t.Fatal("vbd windows overlap")
	}
}

func TestXenstoreDevicePathsCreated(t *testing.T) {
	rig, err := NewNetworkRig(KindKite, 9)
	if err != nil {
		t.Fatal(err)
	}
	sys := rig.Testbed.System
	fp := xenbus.FrontendPath(xenbus.DomID(rig.Guest.Dom.ID), "vif", 0)
	if sys.Bus.State(fp) != xenbus.StateConnected {
		t.Fatalf("frontend state = %v", sys.Bus.State(fp))
	}
	if _, ok := sys.Store.Read(fp + "/mac"); !ok {
		t.Fatal("vif mac not in xenstore")
	}
}

func TestNATModeOutboundAndForward(t *testing.T) {
	tb := NewTestbed(11)
	nd, err := tb.System.CreateNetworkDomain(NetworkDomainConfig{
		Kind: KindKite, NIC: tb.ServerNIC,
		NAT: true, GatewayIP: netpkt.IPv4(10, 0, 0, 254),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Guest on a private segment behind the NAT.
	guest, err := tb.System.CreateGuest(GuestConfig{
		Name: "natted", IP: netpkt.IPv4(192, 168, 7, 5), Net: nd, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tb.System.RunReady(guest.Ready, 500000) {
		t.Fatal("guest never ready")
	}
	if nd.NAT() == nil {
		t.Fatal("NAT mode did not create a translator")
	}

	// Outbound: the guest pings the client; the client sees the gateway.
	var rtt sim.Time = -1
	guest.Stack.Ping(tb.ClientIP, 56, func(d sim.Time) { rtt = d })
	if !tb.System.RunReady(func() bool { return rtt >= 0 }, 1_000_000) {
		t.Fatal("ping through NAT never completed")
	}

	// Outbound UDP: client echoes; reply must come back to the guest.
	tb.Client.Stack.BindUDP(9, func(p netstack.UDPPacket) {
		if p.Src != netpkt.IPv4(10, 0, 0, 254) {
			t.Fatalf("client saw source %v, want the gateway", p.Src)
		}
		tb.Client.Stack.SendUDP(p.Src, p.SrcPort, 9, p.Data)
	})
	var echoed []byte
	guest.Stack.BindUDP(5000, func(p netstack.UDPPacket) { echoed = p.Data })
	guest.Stack.SendUDP(tb.ClientIP, 9, 5000, []byte("masqueraded"))
	if !tb.System.RunReady(func() bool { return echoed != nil }, 1_000_000) {
		t.Fatal("udp echo through NAT never completed")
	}
	if string(echoed) != "masqueraded" {
		t.Fatalf("echoed = %q", echoed)
	}

	// Unsolicited inbound is dropped (the NAT's implicit firewall)...
	gotUnsolicited := false
	guest.Stack.BindUDP(7777, func(netstack.UDPPacket) { gotUnsolicited = true })
	tb.Client.Stack.SendUDP(netpkt.IPv4(10, 0, 0, 254), 7777, 6000, []byte("scan"))
	tb.System.Eng.RunFor(5 * sim.Millisecond)
	if gotUnsolicited {
		t.Fatal("unsolicited inbound reached the guest")
	}

	// ...until a static forward is installed (TCP this time).
	if err := nd.NAT().AddForward(8080, guest.Stack.IP(), 80); err != nil {
		t.Fatal(err)
	}
	srv, err := apps.NewHTTPServer(guest.Stack, 80)
	if err != nil {
		t.Fatal(err)
	}
	srv.AddFile("/x", []byte("behind-nat"))
	var body []byte
	tb.Client.Stack.Dial(netpkt.IPv4(10, 0, 0, 254), 8080, func(c *netstack.Conn, err error) {
		if err != nil {
			t.Fatalf("dial forwarded port: %v", err)
		}
		c.OnData(func(b []byte) { body = append(body, b...) })
		c.Send([]byte("GET /x HTTP/1.1\r\n\r\n"))
	})
	if !tb.System.RunReady(func() bool {
		return bytes.Contains(body, []byte("behind-nat"))
	}, 2_000_000) {
		t.Fatal("forwarded HTTP fetch never completed")
	}
}

func TestMultiNICNetworkDomain(t *testing.T) {
	// One Kite network domain bridging two physical NICs, each cabled to
	// its own client machine; one guest reachable from both sides.
	rig, err := NewNetworkRig(KindKite, 41)
	if err != nil {
		t.Fatal(err)
	}
	sys := rig.Testbed.System
	nic2 := nic.New(sys.Eng, "ixgbe1", netpkt.MAC{0x90, 0xe2, 0xba, 0, 0, 0x11}, "05:00.0")
	client2 := netstack.NewHost(sys.Eng, netstack.HostConfig{
		Name: "client2", CPUs: 4, IP: netpkt.IPv4(10, 0, 0, 3),
		MAC: netpkt.MAC{0x90, 0xe2, 0xba, 0, 0, 0x21}, BDF: "82:00.0",
		Costs: netstack.LinuxGuestCosts(), Seed: 41,
	})
	nic.Connect(nic2, client2.NIC, nic.DefaultLink())
	if err := rig.ND.AttachNIC(sys, nic2, "if1"); err != nil {
		t.Fatal(err)
	}

	var rtt1, rtt2 sim.Time = -1, -1
	rig.Client.Stack.Ping(rig.GuestIP, 56, func(d sim.Time) { rtt1 = d })
	client2.Stack.Ping(rig.GuestIP, 56, func(d sim.Time) { rtt2 = d })
	if !sys.RunReady(func() bool { return rtt1 >= 0 && rtt2 >= 0 }, 1_000_000) {
		t.Fatal("pings over both NICs never completed")
	}
	// Cross-NIC forwarding: client1 reaches client2 through the bridge.
	var cross sim.Time = -1
	rig.Client.Stack.Ping(netpkt.IPv4(10, 0, 0, 3), 56, func(d sim.Time) { cross = d })
	if !sys.RunReady(func() bool { return cross >= 0 }, 1_000_000) {
		t.Fatal("client-to-client ping through the driver domain failed")
	}
	out, err := rig.ND.Ifconfig("-a")
	if err != nil {
		t.Fatal(err)
	}
	_ = out
	if len(rig.ND.Bridge.Ports()) != 3 {
		t.Fatalf("bridge ports = %d, want 3 (if0, if1, vif)", len(rig.ND.Bridge.Ports()))
	}
}

func TestDriverDomainSMPScaling(t *testing.T) {
	// §3.1: one Kite domain can serve several NICs for I/O scaling because
	// it supports multiple cores. Two guests stream to two clients over
	// two physical 10GbE NICs: one vCPU caps below the 2x wire aggregate;
	// two vCPUs forward measurably more.
	measure := func(vcpus int) float64 {
		tb := NewTestbed(51)
		sys := tb.System
		nd, err := sys.CreateNetworkDomain(NetworkDomainConfig{
			Kind: KindKite, NIC: tb.ServerNIC, VCPUs: vcpus,
		})
		if err != nil {
			t.Fatal(err)
		}
		nic2 := nic.New(sys.Eng, "ixgbe1", netpkt.MAC{0x90, 0xe2, 0xba, 0, 0, 0x12}, "05:00.0")
		client2 := netstack.NewHost(sys.Eng, netstack.HostConfig{
			Name: "client2", CPUs: 4, IP: netpkt.IPv4(10, 0, 0, 4),
			MAC: netpkt.MAC{0x90, 0xe2, 0xba, 0, 0, 0x22}, BDF: "82:00.0",
			Costs: netstack.LinuxGuestCosts(), Seed: 52,
		})
		nic.Connect(nic2, client2.NIC, nic.DefaultLink())
		if err := nd.AttachNIC(sys, nic2, "if1"); err != nil {
			t.Fatal(err)
		}
		clients := []*netstack.Host{tb.Client, client2}
		var guests []*Guest
		for i := 0; i < 2; i++ {
			g, err := sys.CreateGuest(GuestConfig{
				Name: fmt.Sprintf("g%d", i), IP: netpkt.IPv4(10, 0, 0, byte(10+i)),
				Net: nd, Seed: uint64(51 + i),
			})
			if err != nil {
				t.Fatal(err)
			}
			guests = append(guests, g)
		}
		if !sys.RunReady(func() bool {
			return guests[0].Ready() && guests[1].Ready()
		}, 500000) {
			t.Fatal("guests never ready")
		}
		var rx, rxAtEnd uint64
		for _, c := range clients {
			c.Stack.BindUDP(9, func(p netstack.UDPPacket) { rx += uint64(len(p.Data)) })
		}
		payload := make([]byte, 8192)
		dur := 10 * sim.Millisecond
		start := sys.Eng.Now()
		sys.Eng.After(dur, func() { rxAtEnd = rx })
		for i, g := range guests {
			g, dst := g, clients[i].Stack.IP()
			var pump func()
			pump = func() {
				if sys.Eng.Now()-start >= dur {
					return
				}
				// Offer ~8 Gbps per guest: 4 datagrams per 32.8 us tick.
				for k := 0; k < 4; k++ {
					g.Stack.SendUDP(dst, 9, 5000, payload)
				}
				sys.Eng.After(32800*sim.Nanosecond, pump)
			}
			pump()
		}
		sys.Eng.RunFor(dur + 10*sim.Millisecond)
		return float64(rxAtEnd*8) / dur.Seconds() / 1e9
	}
	one := measure(1)
	two := measure(2)
	if one < 6 {
		t.Fatalf("1-vCPU aggregate = %.2f Gbps, implausibly low", one)
	}
	if two < one*1.15 {
		t.Fatalf("2-vCPU DD did not scale across two NICs: %.2f vs %.2f Gbps", two, one)
	}
}
