// Package core is the Kite system: the orchestration layer that builds
// unikernelized service domains (the paper's contribution) and their
// Linux-based baseline equivalents on top of the simulated Xen substrate.
//
// It plays two roles the paper describes:
//
//   - the minimal toolstack functionality a driver domain needs (device
//     entries in xenstore, PCI passthrough assignment, vbd windows) —
//     replacing xl/libxl's heavyweight path (§1, §3.1), and
//   - the in-domain configuration applications: the network application
//     that creates the bridge, brings up the physical IF and attaches new
//     VIFs (§4.3, ifconfig/brconfig), and the block status application
//     that oversees vbd instances (§4.4).
//
// A System owns one simulation; CreateNetworkDomain / CreateStorageDomain
// / CreateGuest / CreateDaemonVM assemble the paper's testbed piece by
// piece.
//
//kite:deterministic
package core

import (
	"errors"
	"fmt"

	"kite/internal/apps"

	"kite/internal/blkback"
	"kite/internal/blkfront"
	"kite/internal/blkif"
	"kite/internal/blkpool"
	"kite/internal/bridge"
	"kite/internal/bufpool"
	"kite/internal/framepool"
	"kite/internal/fsim"
	"kite/internal/guestos"
	"kite/internal/nat"
	"kite/internal/netback"
	"kite/internal/netfront"
	"kite/internal/netif"
	"kite/internal/netpkt"
	"kite/internal/netstack"
	"kite/internal/nic"
	"kite/internal/nvme"
	"kite/internal/sim"
	"kite/internal/xen"
	"kite/internal/xenbus"
	"kite/internal/xenstore"
)

// errNotReady reports a rig whose handshakes did not complete.
var errNotReady = errors.New("core: devices did not reach Connected")

// DriverKind selects the driver-domain implementation.
type DriverKind int

// Driver domain kinds.
const (
	KindKite DriverKind = iota
	KindLinux
)

func (k DriverKind) String() string {
	if k == KindKite {
		return "kite"
	}
	return "linux"
}

// System is one simulated machine running Xen with Dom0 and the service
// domains Kite manages.
type System struct {
	Eng    *sim.Engine
	HV     *xen.Hypervisor
	Store  *xenstore.Store
	Bus    *xenbus.Bus
	NetReg *netif.Registry
	BlkReg *blkif.Registry
	Dom0   *xen.Domain

	// Pool is the system-wide frame buffer pool every network component
	// draws from; Pool.Outstanding() == 0 at quiesce proves no component
	// leaked a frame reference.
	Pool *framepool.Pool

	// BlkPool is its storage sibling: the sector-buffer pool every
	// blkfront draws read completions from. BlkPool.Outstanding() == 0 at
	// quiesce proves no storage component leaked a buffer.
	BlkPool *blkpool.Pool

	// Cluster is non-nil when the event core is sharded across per-queue
	// engines (NewShardedSystem); Eng is then the cluster's shard 0, where
	// everything that is not a pinned PV queue lives.
	Cluster *sim.Cluster

	seed        uint64
	nextVbdBase int64
}

// ShardLookahead is the conservative lookahead window of sharded systems:
// every cross-shard hand-off in the PV data paths (qdisc dispatch, softirq
// delivery, bridge input) models at least this much latency, so shards can
// safely run that far apart within a window.
const ShardLookahead = 2 * sim.Microsecond

// NewSystem boots the hypervisor and Dom0 (which hosts xenstored; per §5,
// Dom0 has no storage or network drivers).
func NewSystem(seed uint64) *System { return newSystem(seed, nil) }

// NewShardedSystem boots a system whose discrete-event core is split into
// 1+queues cluster shards: shard 0 carries the hypervisor, Dom0, bridges,
// stacks and devices; shard 1+i is reserved for queue i of the PV
// transports. Runs are bit-identical to any worker count (and to the same
// topology at workers=1); wall clock drops as workers are added.
func NewShardedSystem(seed uint64, queues int) *System {
	return newSystem(seed, sim.NewCluster(1+queues, ShardLookahead, seed))
}

func newSystem(seed uint64, cluster *sim.Cluster) *System {
	var eng *sim.Engine
	if cluster != nil {
		eng = cluster.Shard(0)
		// The PV transports form a star: every cross-shard hand-off runs
		// between the home shard (devices, bridge, stacks) and a queue
		// shard, never queue-to-queue. Declaring exactly those edges lets
		// the cluster derive per-shard horizons — a queue shard is bounded
		// by the home shard at one hop but by its sibling queues only at
		// two (2·ShardLookahead via the closure) — and turns any
		// undeclared queue-to-queue post into an immediate panic. The
		// drivers refine these edges with their own hand-off latencies at
		// pinning time (netback.SetShards/SetFleet, netfront queue setup).
		for i := 1; i < cluster.Shards(); i++ {
			cluster.DeclareEdge(0, i, ShardLookahead)
			cluster.DeclareEdge(i, 0, ShardLookahead)
		}
	} else {
		eng = sim.NewEngine()
	}
	hv := xen.New(eng)
	dom0 := hv.CreateDomain(xen.DomainConfig{
		Name: "dom0", VCPUs: 2, MemBytes: 8 << 30, Privileged: true,
		IRQLatency: 6 * sim.Microsecond,
	})
	store := xenstore.New(eng)
	s := &System{
		Eng: eng, HV: hv, Store: store, Bus: xenbus.New(store),
		NetReg: netif.NewRegistry(), BlkReg: blkif.NewRegistry(),
		Dom0: dom0, Pool: framepool.New(), BlkPool: blkpool.New(),
		Cluster: cluster, seed: seed, nextVbdBase: 2048,
	}
	if cluster != nil {
		// Free lists live on shard 0; remote releases post back home.
		// Releases staged on queue shards arrive a lookahead window late,
		// so pre-size the shared list: stacks and NICs must never allocate
		// just because a recycled frame is still in flight between shards.
		s.Pool.SetHome(eng)
		s.Pool.Prealloc(2 * netif.RingSize)
	}
	return s
}

// QueueShards returns the engines reserved for PV queue pinning (shard 1
// onward), or nil for an unsharded system.
func (s *System) QueueShards() []*sim.Engine {
	if s.Cluster == nil {
		return nil
	}
	qs := make([]*sim.Engine, s.Cluster.Shards()-1)
	for i := range qs {
		qs[i] = s.Cluster.Shard(1 + i)
	}
	return qs
}

// RunReady drives the simulation until ready() holds (or the event cap
// trips, returning false). It is the "wait for handshakes" helper.
func (s *System) RunReady(ready func() bool, maxEvents uint64) bool {
	start := s.Eng.Processed()
	for !ready() {
		if !s.Eng.Step() {
			return ready()
		}
		if s.Eng.Processed()-start > maxEvents {
			return false
		}
	}
	return true
}

// NetworkDomainConfig describes a network driver domain to build.
type NetworkDomainConfig struct {
	Kind DriverKind
	NIC  *nic.NIC
	// Boot runs the OS boot sequence before the domain serves (E1 measures
	// it); when false the domain is ready immediately.
	Boot bool
	// NAT switches the network application from bridging to network
	// address translation (§3.1's alternative organization): guests sit on
	// a private segment and share GatewayIP on the physical side.
	NAT       bool
	GatewayIP netpkt.IP
	// VCPUs overrides the profile's vCPU count (§5 uses 1; the design
	// supports more for I/O scaling).
	VCPUs int
	// Fleet switches the netback driver into fleet mode on a sharded
	// system: shared DRR service lanes (one per queue shard) serve many
	// single-queue tenants instead of per-VIF dedicated workers. The
	// domain needs 2*lanes+1 vCPUs (lane workers, bridge forwarding,
	// invoker); VCPUs defaults to that when unset.
	Fleet bool
}

// NetworkDomain is a running network driver domain: the physical NIC, the
// bridge (or NAT router), and the netback driver, all inside one
// unprivileged VM.
type NetworkDomain struct {
	Dom     *xen.Domain
	Profile *guestos.Profile
	Kind    DriverKind
	Bridge  *bridge.Bridge
	Driver  *netback.Driver
	NIC     *nic.NIC

	// Tenants is the driver's attach/detach ledger in fleet mode (nil
	// otherwise).
	Tenants *xenbus.TenantRegistry

	// NATRouter is non-nil in NAT mode.
	router *natRouter

	ready   bool
	bootLog []string
}

// NAT returns the translator when the domain runs in NAT mode (nil in
// bridge mode); use it to install port forwards.
func (nd *NetworkDomain) NAT() *nat.Translator {
	if nd.router == nil {
		return nil
	}
	return nd.router.Translator()
}

// Ready reports whether the domain finished booting and configuring.
func (nd *NetworkDomain) Ready() bool { return nd.ready }

// AttachNIC adds a second physical NIC to the domain's bridge (§3.1: one
// Kite domain can serve several NICs for I/O scaling, since it supports
// multiple cores). Only meaningful in bridge mode.
func (nd *NetworkDomain) AttachNIC(s *System, dev *nic.NIC, name string) error {
	if nd.router != nil {
		return fmt.Errorf("core: AttachNIC unsupported in NAT mode")
	}
	if err := s.HV.AssignPCI(dev.BDF(), nd.Dom.ID); err != nil {
		return err
	}
	nd.Bridge.AttachDevice(name, dev)
	return nil
}

// BootLog returns the boot phases observed (E1 diagnostics).
func (nd *NetworkDomain) BootLog() []string { return nd.bootLog }

// CreateNetworkDomain builds a network driver domain of the given kind
// and assigns it the physical NIC via PCI passthrough.
func (s *System) CreateNetworkDomain(cfg NetworkDomainConfig) (*NetworkDomain, error) {
	var profile *guestos.Profile
	var costs netback.Costs
	var brCost sim.Time
	if cfg.Kind == KindKite {
		profile = guestos.KiteNetworkDomain()
		costs = netback.KiteCosts()
		brCost = 250 * sim.Nanosecond
	} else {
		profile = guestos.UbuntuDriverDomain()
		costs = netback.LinuxCosts()
		brCost = 320 * sim.Nanosecond // netfilter hooks on the bridge path
	}
	vcpus := profile.VCPUs
	if cfg.VCPUs > 0 {
		vcpus = cfg.VCPUs
	} else if cfg.Fleet {
		if qs := s.QueueShards(); qs != nil {
			vcpus = 2*len(qs) + 1
		}
	}
	dom := s.HV.CreateDomain(xen.DomainConfig{
		Name: fmt.Sprintf("netdd-%s", cfg.Kind), VCPUs: vcpus,
		MemBytes: profile.MemBytes, IRQLatency: profile.IRQLatency,
	})
	if err := s.HV.AssignPCI(cfg.NIC.BDF(), dom.ID); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	nd := &NetworkDomain{Dom: dom, Profile: profile, Kind: cfg.Kind, NIC: cfg.NIC}

	start := func() {
		// The network application (§4.3): create the bridge (or the NAT
		// router), attach the physical IF, then serve frontends. In a
		// sharded system vCPUs 0..Q-1 are pinned one-per-queue by the
		// netback driver; the bridge path runs on the remaining width.
		brCPUs := dom.CPUs
		if qs := s.QueueShards(); qs != nil && dom.CPUs.Len() > len(qs) {
			brCPUs = dom.CPUs.Slice(len(qs), dom.CPUs.Len())
		}
		nd.Bridge = bridge.New(s.Eng, brCPUs, "xenbr0")
		nd.Bridge.PerFrameCost = brCost
		if cfg.NAT {
			nd.router = newNATRouter(s.Eng, dom, nd.Bridge, cfg.NIC,
				cfg.NIC.MAC(), cfg.GatewayIP, brCost, s.Pool)
		} else {
			nd.Bridge.AttachDevice("if0", cfg.NIC)
		}
		nd.Driver = netback.NewDriver(s.Eng, dom, s.Bus, s.NetReg, nd.Bridge, costs, s.Pool)
		if qs := s.QueueShards(); qs != nil {
			if cfg.Fleet {
				nd.Driver.SetFleet(qs)
				nd.Tenants = xenbus.NewTenantRegistry(s.Bus, xenbus.DomID(dom.ID))
				nd.Driver.SetTenantRegistry(nd.Tenants)
			} else {
				nd.Driver.SetShards(qs)
			}
		}
		nd.ready = true
	}
	if cfg.Boot {
		profile.Boot(s.Eng, func(ph guestos.BootPhase) {
			nd.bootLog = append(nd.bootLog, ph.Name)
		}, start)
	} else {
		start()
	}
	return nd, nil
}

// StorageDomainConfig describes a storage driver domain.
type StorageDomainConfig struct {
	Kind   DriverKind
	Device *nvme.Device
	Boot   bool
	// Tuning exposes the blkback feature knobs for ablation benches; nil
	// means the kind's defaults.
	Tuning *blkback.Costs
	// VCPUs overrides the profile's vCPU count; blkback advertises one
	// hardware queue per vCPU, so multi-queue vbds need VCPUs > 1.
	VCPUs int
	// FleetLanes switches the blkback driver into fleet mode with this
	// many shared DRR request lanes serving single-queue tenants; VCPUs
	// defaults to FleetLanes+1 (lane workers + invoker).
	FleetLanes int
}

// StorageDomain is a running storage driver domain.
type StorageDomain struct {
	Dom     *xen.Domain
	Profile *guestos.Profile
	Kind    DriverKind
	Driver  *blkback.Driver
	Device  *nvme.Device

	// Tenants is the driver's attach/detach ledger in fleet mode (nil
	// otherwise).
	Tenants *xenbus.TenantRegistry

	ready bool
}

// Ready reports whether the domain is serving.
func (sd *StorageDomain) Ready() bool { return sd.ready }

// CreateStorageDomain builds a storage driver domain owning the NVMe
// device.
func (s *System) CreateStorageDomain(cfg StorageDomainConfig) (*StorageDomain, error) {
	var profile *guestos.Profile
	var costs blkback.Costs
	if cfg.Kind == KindKite {
		profile = guestos.KiteStorageDomain()
		costs = blkback.KiteCosts()
	} else {
		profile = guestos.UbuntuDriverDomain()
		costs = blkback.LinuxCosts()
	}
	if cfg.Tuning != nil {
		costs = *cfg.Tuning
	}
	vcpus := profile.VCPUs
	if cfg.VCPUs > 0 {
		vcpus = cfg.VCPUs
	} else if cfg.FleetLanes > 0 {
		vcpus = cfg.FleetLanes + 1
	}
	dom := s.HV.CreateDomain(xen.DomainConfig{
		Name: fmt.Sprintf("blkdd-%s", cfg.Kind), VCPUs: vcpus,
		MemBytes: profile.MemBytes, IRQLatency: profile.IRQLatency,
	})
	if err := s.HV.AssignPCI(cfg.Device.BDF(), dom.ID); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	sd := &StorageDomain{Dom: dom, Profile: profile, Kind: cfg.Kind, Device: cfg.Device}
	start := func() {
		// The block status application (§4.4) is the driver's OnInstance
		// observer; the driver itself holds the watch thread.
		sd.Driver = blkback.NewDriver(s.Eng, dom, s.Bus, s.BlkReg, cfg.Device, costs)
		if cfg.FleetLanes > 0 {
			sd.Driver.SetFleet(cfg.FleetLanes)
			sd.Tenants = xenbus.NewTenantRegistry(s.Bus, xenbus.DomID(dom.ID))
			sd.Driver.SetTenantRegistry(sd.Tenants)
		}
		sd.ready = true
	}
	if cfg.Boot {
		profile.Boot(s.Eng, nil, start)
	} else {
		start()
	}
	return sd, nil
}

// pickBlkCosts returns the blkback cost profile for a kind.
func pickBlkCosts(kind DriverKind) blkback.Costs {
	if kind == KindKite {
		return blkback.KiteCosts()
	}
	return blkback.LinuxCosts()
}

// GuestConfig describes a DomU application VM.
type GuestConfig struct {
	Name string
	IP   netpkt.IP
	// Net attaches a vif served by the given network domain.
	Net *NetworkDomain
	// Storage attaches a vbd window of DiskBytes on the given storage
	// domain.
	Storage   *StorageDomain
	DiskBytes int64
	// CacheBytes sizes the guest page cache (default 64 MiB; §5.4 keeps it
	// below the dataset).
	CacheBytes int64
	// Profile overrides the default Ubuntu guest profile.
	Profile *guestos.Profile
	Seed    uint64
	// NetQueues / BlkQueues request multi-queue PV transports; the
	// handshakes negotiate down to what the backend advertises (one queue
	// per driver-domain vCPU). 0 means single-queue.
	NetQueues int
	BlkQueues int
	// VCPUs overrides the profile's vCPU count (sharded rigs give the guest
	// one vCPU per queue plus one for the stack).
	VCPUs int
	// Fleet marks the guest as one tenant of a fleet-mode network domain
	// (NetworkDomainConfig.Fleet): its single-queue vif is pinned to the
	// cluster shard of service lane FleetLane, and the lane hint is
	// published in the device's backend directory so the driver's
	// assignment matches the pinning.
	Fleet     bool
	FleetLane int
}

// Guest is a DomU with its stack, frontends, and (optionally) a mounted
// filesystem.
type Guest struct {
	Dom     *xen.Domain
	Profile *guestos.Profile
	Stack   *netstack.Stack
	Net     *netfront.Device
	Disk    *blkfront.Device
	Pool    *bufpool.Pool
	FS      *fsim.FS

	devID    int
	netDevID int
	// fleet tenancy survives reattach: a replugged vif must land back on
	// the same service lane (and cluster shard) it was pinned to.
	fleet     bool
	fleetLane int
}

// Ready reports whether all attached frontends are connected.
func (g *Guest) Ready() bool {
	if g.Net != nil && !g.Net.Ready() {
		return false
	}
	if g.Disk != nil && !g.Disk.Ready() {
		return false
	}
	return true
}

// CreateGuest builds a DomU and attaches the requested PV devices. The
// caller drives the engine (RunReady) until Guest.Ready.
func (s *System) CreateGuest(cfg GuestConfig) (*Guest, error) {
	profile := cfg.Profile
	if profile == nil {
		profile = guestos.UbuntuGuest()
	}
	vcpus := profile.VCPUs
	if cfg.VCPUs > 0 {
		vcpus = cfg.VCPUs
	} else if s.Cluster != nil && cfg.NetQueues > 1 {
		// Sharded: vCPUs 0..Q-1 are pinned one-per-queue; the stack keeps
		// the profile's own width on the rest.
		vcpus = profile.VCPUs + cfg.NetQueues
	} else if s.Cluster != nil && cfg.Fleet {
		vcpus = profile.VCPUs + 1 // vCPU 0 pinned to the lane's shard
	}
	dom := s.HV.CreateDomain(xen.DomainConfig{
		Name: cfg.Name, VCPUs: vcpus,
		MemBytes: profile.MemBytes, IRQLatency: profile.IRQLatency,
	})
	g := &Guest{Dom: dom, Profile: profile, fleet: cfg.Fleet, fleetLane: cfg.FleetLane}

	if cfg.Net != nil {
		mac := netpkt.XenMAC(uint16(dom.ID), 0)
		backExtra := map[string]string{xenstore.KeyBridge: "xenbr0"}
		if cfg.Fleet {
			backExtra[xenstore.KeyTenantLane] = fmt.Sprintf("%d", cfg.FleetLane)
		}
		s.Bus.AddDevice(xenbus.DeviceSpec{
			Type: xenstore.DevVif, FrontDom: xenbus.DomID(dom.ID),
			BackDom: xenbus.DomID(cfg.Net.Dom.ID), DevID: 0,
			FrontExtra: map[string]string{xenstore.KeyMac: mac.String()},
			BackExtra:  backExtra,
		})
		var netShards []*sim.Engine
		stackCPUs := dom.CPUs
		if qs := s.QueueShards(); qs != nil && cfg.NetQueues > 1 {
			netShards = qs
			// vCPUs 0..Q-1 are pinned per queue; the stack gets the rest.
			stackCPUs = dom.CPUs.Slice(cfg.NetQueues, dom.CPUs.Len())
		} else if qs != nil && cfg.Fleet {
			// Fleet tenant: the single queue lives on its service lane's
			// shard so ring events never cross shards mid-window.
			netShards = []*sim.Engine{qs[cfg.FleetLane%len(qs)]}
			stackCPUs = dom.CPUs.Slice(1, dom.CPUs.Len())
		}
		g.Net = netfront.New(s.Eng, netfront.Config{
			Dom: dom, Bus: s.Bus, Registry: s.NetReg, DevID: 0,
			BackDom: cfg.Net.Dom.ID, MAC: mac, Pool: s.Pool,
			Queues: cfg.NetQueues, HashSeed: cfg.Seed ^ s.seed,
			Shards: netShards,
		})
		stackCosts := netstack.LinuxGuestCosts()
		if profile.Family == guestos.FamilyNetBSD {
			stackCosts = netstack.RumprunCosts()
		}
		g.Stack = netstack.New(s.Eng, netstack.Config{
			Name: cfg.Name, CPUs: stackCPUs, Iface: g.Net,
			IP: cfg.IP, Costs: stackCosts, Seed: cfg.Seed ^ s.seed,
			Pool: s.Pool,
		})
	}

	if cfg.Storage != nil {
		if cfg.DiskBytes <= 0 {
			return nil, fmt.Errorf("core: guest %s: storage without DiskBytes", cfg.Name)
		}
		sectors := cfg.DiskBytes / blkif.SectorSize
		base := s.nextVbdBase
		if (base+sectors)*blkif.SectorSize > cfg.Storage.Device.CapacitySectors()*blkif.SectorSize {
			return nil, fmt.Errorf("core: nvme device exhausted")
		}
		s.nextVbdBase = base + sectors
		devid := 51712 // xvda
		g.devID = devid
		s.Bus.AddDevice(xenbus.DeviceSpec{
			Type: xenstore.DevVbd, FrontDom: xenbus.DomID(dom.ID),
			BackDom: xenbus.DomID(cfg.Storage.Dom.ID), DevID: devid,
			BackExtra: map[string]string{"params": fmt.Sprintf("%d:%d", base, sectors)},
		})
		cache := cfg.CacheBytes
		if cache == 0 {
			cache = 64 << 20
		}
		// The cache and filesystem run on shard 0; skip guest vCPUs that a
		// sharded vif pinned to queue shards.
		blkCPUs := dom.CPUs
		if s.Cluster != nil && cfg.Net != nil {
			if cfg.NetQueues > 1 {
				blkCPUs = dom.CPUs.Slice(cfg.NetQueues, dom.CPUs.Len())
			} else if cfg.Fleet {
				blkCPUs = dom.CPUs.Slice(1, dom.CPUs.Len())
			}
		}
		// The filesystem mounts once the vbd handshake reports the disk
		// size (blkfront learns its sector count from the backend).
		g.Disk = blkfront.New(s.Eng, blkfront.Config{
			Dom: dom, Bus: s.Bus, Registry: s.BlkReg, DevID: devid,
			BackDom: cfg.Storage.Dom.ID, Pool: s.BlkPool,
			Queues: cfg.BlkQueues,
			OnReady: func() {
				g.Pool = bufpool.New(s.Eng, g.Disk, bufpool.Config{
					CapacityBytes: cache,
					CPUs:          blkCPUs,
					HitCost:       400 * sim.Nanosecond,
					PerKBCost:     45 * sim.Nanosecond,
				})
				g.FS = fsim.New(s.Eng, g.Pool, blkCPUs, fsim.DefaultCosts())
			},
		})
	}
	return g, nil
}

// CloseNet detaches the guest's vif (frontend-initiated close).
func (g *Guest) CloseNet(s *System) {
	if g.Net == nil {
		return
	}
	fp := xenbus.FrontendPath(xenbus.DomID(g.Dom.ID), xenstore.DevVif, g.netDevID)
	_ = s.Bus.SwitchState(fp, xenbus.StateClosed)
}

// ReattachNet replugs the guest's network onto a (new) driver domain —
// the recovery path after a driver domain crash + restart (§5.2 motivates
// fast boots with exactly this scenario). The stack keeps its address and
// sockets; only the vif underneath changes.
func (g *Guest) ReattachNet(s *System, nd *NetworkDomain) error {
	if g.Stack == nil {
		return fmt.Errorf("core: guest %s has no network stack", g.Dom.Name)
	}
	g.CloseNet(s)
	g.netDevID++
	mac := netpkt.XenMAC(uint16(g.Dom.ID), byte(g.netDevID))
	backExtra := map[string]string{xenstore.KeyBridge: "xenbr0"}
	if g.fleet {
		// Republish the lane hint so the driver assigns the replugged vif
		// to the tenant's original service lane, not the round-robin cursor.
		backExtra[xenstore.KeyTenantLane] = fmt.Sprintf("%d", g.fleetLane)
	}
	s.Bus.AddDevice(xenbus.DeviceSpec{
		Type: xenstore.DevVif, FrontDom: xenbus.DomID(g.Dom.ID),
		BackDom: xenbus.DomID(nd.Dom.ID), DevID: g.netDevID,
		FrontExtra: map[string]string{xenstore.KeyMac: mac.String()},
		BackExtra:  backExtra,
	})
	var netShards []*sim.Engine
	if qs := s.QueueShards(); qs != nil && g.fleet {
		// Fleet tenant: keep the single queue on its lane's shard (see
		// CreateGuest) so ring events never cross shards mid-window.
		netShards = []*sim.Engine{qs[g.fleetLane%len(qs)]}
	}
	g.Net = netfront.New(s.Eng, netfront.Config{
		Dom: g.Dom, Bus: s.Bus, Registry: s.NetReg, DevID: g.netDevID,
		BackDom: nd.Dom.ID, MAC: mac, Pool: s.Pool,
		Shards: netShards,
	})
	g.Stack.SetIface(g.Net)
	return nil
}

// DaemonVM is a unikernelized daemon service VM (§5.5): a Kite guest
// running one daemon — here the OpenDHCP port.
type DaemonVM struct {
	Guest  *Guest
	Server *apps.DHCPServer
}

// CreateDHCPDaemonVM builds the rumprun DHCP service VM on a network
// domain's bridge, leasing poolStart..poolStart+poolSize-1.
func (s *System) CreateDHCPDaemonVM(nd *NetworkDomain, ip netpkt.IP,
	poolStart netpkt.IP, poolSize int) (*DaemonVM, error) {

	g, err := s.CreateGuest(GuestConfig{
		Name: "dhcp-vm", IP: ip, Net: nd,
		Profile: guestos.KiteDHCPDomain(), Seed: 0xd4c9,
	})
	if err != nil {
		return nil, err
	}
	srv, err := apps.NewDHCPServer(g.Stack, poolStart, poolSize)
	if err != nil {
		return nil, err
	}
	return &DaemonVM{Guest: g, Server: srv}, nil
}
