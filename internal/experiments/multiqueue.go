package experiments

import (
	"fmt"

	"kite/internal/core"
	"kite/internal/metrics"
	"kite/internal/netstack"
)

// MQStats summarizes the deterministic multi-queue workload behind
// kitebench's -queues flag. Every figure is queue-invariant by
// construction: the RSS steering and extent striping change only *when*
// frames and requests move, never *what* arrives — so the printed lines
// are byte-identical for any -queues (and, like the rest of the summary,
// for any -parallel). Timing and scaling numbers deliberately live in the
// MQ benchmarks and BENCH_*.json, not here.
type MQStats struct {
	// Network leg: UDP datagrams pushed both ways over a Kite vif.
	NetFrames   uint64
	NetBytes    uint64
	QueueTx     uint64 // per-queue Tx counter total (metrics.NetQueueTxFrames delta)
	QueueRx     uint64 // per-queue Rx counter total (metrics.NetQueueRxFrames delta)
	NetChecksum uint64 // order-invariant sum of per-datagram FNV-1a hashes

	// Block leg: 4 KiB ops striped across a Kite vbd's queues.
	BlkOps      uint64
	BlkBytes    uint64
	QueueReqs   uint64 // per-queue ring-request counter total (metrics.BlkQueueRequests delta)
	BlkChecksum uint64 // sum of FNV-1a hashes of the data read back, in issue order

	// Shard-cluster counters for the network leg (zero when unsharded).
	// Windows and posts are properties of the event timeline, not of the
	// execution, so they are identical at any worker count and GOMAXPROCS —
	// but they do depend on the queue count, so they print on their own
	// line, separate from the queue-invariant summary above.
	Shards  int    // cluster shards (1 + queues when sharded)
	Windows uint64 // lookahead windows the cluster ran
	Fused   uint64 // barriers skipped because no shard staged posts
	Posts   uint64 // cross-shard posts merged at window barriers

	// ShardEvents is the per-shard event count — how the timeline's work
	// actually distributes over the shards. Like windows and posts, it is
	// an execution-order-free property of the event timeline, identical at
	// any worker count and GOMAXPROCS.
	ShardEvents []uint64
}

// String renders the two summary lines exactly as kitebench prints them.
func (m MQStats) String() string {
	return fmt.Sprintf(
		"kitebench: mq net %d frames / %d bytes (queue-tx %d, queue-rx %d), checksum %016x\n"+
			"kitebench: mq blk %d ops / %d bytes (queue-reqs %d), checksum %016x",
		m.NetFrames, m.NetBytes, m.QueueTx, m.QueueRx, m.NetChecksum,
		m.BlkOps, m.BlkBytes, m.QueueReqs, m.BlkChecksum)
}

// ShardLine renders the cluster counters. The line is byte-identical for
// any -cores, -parallel, and GOMAXPROCS (windows and posts are timeline
// facts), but varies with -queues, so kitebench prints it separately from
// the queue-invariant summary.
func (m MQStats) ShardLine() string {
	return fmt.Sprintf("kitebench: mq shards %d, %d windows (%d fused), %d cross-shard posts, events per shard %d",
		m.Shards, m.Windows, m.Fused, m.Posts, m.ShardEvents)
}

// fnv1a hashes b with FNV-1a, folding in a leading tag so datagrams that
// share a payload but not a flow still hash apart.
func fnv1a(tag uint64, b []byte) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < 8; i++ {
		h ^= tag >> (8 * i) & 0xff
		h *= 1099511628211
	}
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// mqFlows is the number of distinct UDP source ports the network leg
// spreads over; the Toeplitz hash fans 32 flows across every queue count
// up to netif.MaxQueues.
const mqFlows = 32

// MQSummary drives the deterministic multi-queue workload on Kite rigs
// built with the given queue count.
//
// Network leg: mqFlows UDP flows send Scale.PingCount datagrams each,
// guest->client and client->guest, in waves small enough that no qdisc or
// ring ever drops — every datagram arrives exactly once at any queue
// count, so totals and checksums are queue-invariant.
//
// Block leg: 4 KiB writes walk eight 512 KiB stripes round-robin (each op
// stripe-aligned, so the request count does not depend on striping), then
// a flush, then read-back with verification, one op in flight at a time
// so completion order is issue order at any queue count.
// cores > 1 additionally spreads the sharded network leg's per-queue
// shards over that many worker goroutines (cluster.SetWorkers); the
// conservative lookahead windows make the result bit-identical to cores=1.
func MQSummary(s Scale, queues, cores int) MQStats {
	var m MQStats
	qtx0, qrx0 := metrics.NetQueueTxFrames.Load(), metrics.NetQueueRxFrames.Load()
	qreq0 := metrics.BlkQueueRequests.Load()

	// --- Network leg ---
	nrig := mustNetRigCfg(core.NetworkRigConfig{Kind: core.KindKite, Seed: 0x30b, Queues: queues})
	sys := nrig.Testbed.System
	m.Shards = 1
	if c := sys.Cluster; c != nil {
		c.SetWorkers(cores)
		m.Shards = c.Shards()
	}
	payload := make([]byte, 256)
	stamp := func(flow, seq int) {
		for i := range payload {
			payload[i] = byte(i*13 + flow*31 + seq*7)
		}
	}
	var gotClient, gotGuest int
	nrig.Client.Stack.BindUDP(9000, func(p netstack.UDPPacket) {
		gotClient++
		m.NetFrames++
		m.NetBytes += uint64(len(p.Data))
		m.NetChecksum += fnv1a(uint64(p.SrcPort), p.Data)
	})
	nrig.Guest.Stack.BindUDP(9001, func(p netstack.UDPPacket) {
		gotGuest++
		m.NetFrames++
		m.NetBytes += uint64(len(p.Data))
		m.NetChecksum += fnv1a(uint64(p.SrcPort)<<16, p.Data)
	})
	for seq := 0; seq < s.PingCount; seq++ {
		// One wave per direction, well under every per-queue ring, qdisc,
		// and backend queue cap — nothing can drop, so each datagram
		// arrives exactly once regardless of the queue count.
		for f := 0; f < mqFlows; f++ {
			stamp(f, seq)
			nrig.Guest.Stack.SendUDP(nrig.ClientIP, 9000, uint16(10000+f), payload)
		}
		want := (seq + 1) * mqFlows
		drive(sys, func() bool { return gotClient == want }, 5_000_000)
		for f := 0; f < mqFlows; f++ {
			stamp(f, seq)
			nrig.Client.Stack.SendUDP(nrig.GuestIP, 9001, uint16(20000+f), payload)
		}
		drive(sys, func() bool { return gotGuest == want }, 5_000_000)
	}

	// --- Block leg ---
	brig := mustStorRig(core.StorageRigConfig{
		Kind: core.KindKite, Seed: 0x30c, DiskBytes: 1 << 30, Queues: queues,
	})
	const ioBytes = 4 << 10
	buf := make([]byte, ioBytes)
	ops := int(s.DDBytes >> 20) // 4 KiB ops: 48 at quick scale, 512 at full
	sectorOf := func(i int) int64 {
		return int64(i%8)*1024 + int64(i/8)*(ioBytes/512)
	}
	oneOp := func(issue func(done *bool)) {
		done := false
		issue(&done)
		drive(brig.Testbed.System, func() bool { return done }, 10_000_000)
		m.BlkOps++
		m.BlkBytes += ioBytes
	}
	for i := 0; i < ops; i++ {
		for j := range buf {
			buf[j] = byte(j*29 + i*41 + 3)
		}
		i := i
		oneOp(func(done *bool) {
			brig.Guest.Disk.WriteSectors(sectorOf(i), buf, func(err error) { *done = err == nil })
		})
	}
	{
		done := false
		brig.Guest.Disk.Flush(func(err error) { done = err == nil })
		drive(brig.Testbed.System, func() bool { return done }, 10_000_000)
	}
	for i := 0; i < ops; i++ {
		i := i
		oneOp(func(done *bool) {
			brig.Guest.Disk.ReadSectors(sectorOf(i), ioBytes, func(data []byte, err error) {
				if err != nil {
					return
				}
				m.BlkChecksum += fnv1a(uint64(i), data)
				*done = true
			})
		})
	}

	m.QueueTx = metrics.NetQueueTxFrames.Load() - qtx0
	m.QueueRx = metrics.NetQueueRxFrames.Load() - qrx0
	m.QueueReqs = metrics.BlkQueueRequests.Load() - qreq0
	if c := sys.Cluster; c != nil {
		m.Windows = c.Windows()
		m.Fused = c.Fused()
		m.Posts = c.Posted()
		for i := 0; i < c.Shards(); i++ {
			m.ShardEvents = append(m.ShardEvents, c.Shard(i).ProcessedLocal())
		}
	}
	return m
}
