// Package nat implements network address translation for the network
// driver domain — the alternative to bridging that §3.1 lists among the
// techniques driver domains need ("bridging, routing, and network address
// translation (NAT)"), ported in spirit from NetBSD's npf/ipnat the way
// Kite ports ifconfig/brconfig.
//
// The translator sits between the physical interface (outside) and the
// guest-facing VIFs (inside): outbound flows get their source rewritten to
// the gateway address with an allocated port; inbound packets are matched
// against the flow table (plus static port forwards) and rewritten back.
// TCP, UDP, and ICMP echo are supported — enough for every workload in the
// evaluation.
package nat

import (
	"encoding/binary"
	"fmt"

	"kite/internal/netpkt"
	"kite/internal/sim"
)

// proto keys for the flow table.
type flowKey struct {
	proto   uint8
	guestIP netpkt.IP
	guestPt uint16 // ICMP: echo ID
}

type flow struct {
	key     flowKey
	extPort uint16 // allocated on the gateway (ICMP: rewritten echo ID)
	lastUse sim.Time
}

// Stats counts translator activity.
type Stats struct {
	Outbound   uint64
	Inbound    uint64
	Dropped    uint64 // no matching flow or forward
	FlowsAlloc uint64
}

// Translator is one NAT instance owned by the network driver domain.
type Translator struct {
	eng  *sim.Engine
	cpus *sim.CPUPool

	// Gateway is the external address owned by the driver domain.
	Gateway netpkt.IP
	// PerPacketCost models the translation work.
	PerPacketCost sim.Time

	flows    map[flowKey]*flow
	reverse  map[uint16]*flow // extPort -> flow (per proto spaces merged)
	forwards map[uint16]hostPort
	nextPort uint16

	stats Stats
}

type hostPort struct {
	ip   netpkt.IP
	port uint16
}

// New creates a translator for the given gateway address.
func New(eng *sim.Engine, cpus *sim.CPUPool, gateway netpkt.IP) *Translator {
	return &Translator{
		eng: eng, cpus: cpus, Gateway: gateway,
		PerPacketCost: 350 * sim.Nanosecond,
		flows:         make(map[flowKey]*flow),
		reverse:       make(map[uint16]*flow),
		forwards:      make(map[uint16]hostPort),
		nextPort:      20000,
	}
}

// Stats returns a snapshot of the counters.
func (t *Translator) Stats() Stats { return t.stats }

// Flows returns the number of active translations.
func (t *Translator) Flows() int { return len(t.flows) }

// AddForward installs a static inbound mapping (gateway:extPort ->
// guest:guestPort), the rdr rule servers behind NAT need.
func (t *Translator) AddForward(extPort uint16, guest netpkt.IP, guestPort uint16) error {
	if _, taken := t.forwards[extPort]; taken {
		return fmt.Errorf("nat: external port %d already forwarded", extPort)
	}
	t.forwards[extPort] = hostPort{ip: guest, port: guestPort}
	return nil
}

func (t *Translator) allocPort() uint16 {
	for {
		t.nextPort++
		if t.nextPort < 20000 {
			t.nextPort = 20000
		}
		if _, taken := t.reverse[t.nextPort]; !taken {
			if _, fwd := t.forwards[t.nextPort]; !fwd {
				return t.nextPort
			}
		}
	}
}

// flowFor finds or creates the translation for an outbound packet. A
// guest endpoint that is the target of a static forward keeps the
// forward's external port, so replies of redirected connections translate
// back symmetrically.
func (t *Translator) flowFor(proto uint8, guest netpkt.IP, guestPort uint16) *flow {
	key := flowKey{proto: proto, guestIP: guest, guestPt: guestPort}
	if f := t.flows[key]; f != nil {
		f.lastUse = t.eng.Now()
		return f
	}
	ext := uint16(0)
	for extPort, fwd := range t.forwards {
		if fwd.ip == guest && fwd.port == guestPort {
			ext = extPort
			break
		}
	}
	if ext == 0 {
		ext = t.allocPort()
	}
	f := &flow{key: key, extPort: ext, lastUse: t.eng.Now()}
	t.flows[key] = f
	t.reverse[f.extPort] = f
	t.stats.FlowsAlloc++
	return f
}

// RewriteOutbound translates a guest-originated IPv4 packet (raw, starting
// at the IP header) in place so it appears to come from the gateway.
// Nothing is allocated: L4 ports (or the echo ID) and the IP addresses are
// rewritten inside pkt and checksums are recomputed. Reports whether the
// packet translated (false means drop).
func (t *Translator) RewriteOutbound(pkt []byte) bool {
	t.cpus.Charge(t.PerPacketCost)
	h, payload, ok := netpkt.DecodeIPv4(pkt)
	if !ok {
		t.stats.Dropped++
		return false
	}
	switch h.Proto {
	case netpkt.ProtoTCP:
		if len(payload) < netpkt.TCPHeaderLen {
			t.stats.Dropped++
			return false
		}
		f := t.flowFor(h.Proto, h.Src, binary.BigEndian.Uint16(payload[0:2]))
		binary.BigEndian.PutUint16(payload[0:2], f.extPort)
	case netpkt.ProtoUDP:
		if len(payload) < netpkt.UDPHeaderLen {
			t.stats.Dropped++
			return false
		}
		f := t.flowFor(h.Proto, h.Src, binary.BigEndian.Uint16(payload[0:2]))
		binary.BigEndian.PutUint16(payload[0:2], f.extPort)
	case netpkt.ProtoICMP:
		eh, _, ok := netpkt.DecodeICMPEcho(payload)
		if !ok || eh.Type != netpkt.ICMPEchoRequest {
			t.stats.Dropped++
			return false
		}
		f := t.flowFor(h.Proto, h.Src, eh.ID)
		binary.BigEndian.PutUint16(payload[4:6], f.extPort)
		reICMPChecksum(payload)
	default:
		t.stats.Dropped++
		return false
	}
	rewriteIP(pkt, t.Gateway, h.Dst)
	t.stats.Outbound++
	return true
}

// RewriteInbound translates a packet arriving at the gateway back to the
// owning guest, in place. Returns the guest address and whether a flow or
// forward matched (false means drop — NAT's implicit firewall).
func (t *Translator) RewriteInbound(pkt []byte) (netpkt.IP, bool) {
	t.cpus.Charge(t.PerPacketCost)
	h, payload, ok := netpkt.DecodeIPv4(pkt)
	if !ok || h.Dst != t.Gateway {
		t.stats.Dropped++
		return netpkt.IP{}, false
	}
	var dst netpkt.IP
	switch h.Proto {
	case netpkt.ProtoTCP, netpkt.ProtoUDP:
		hdrLen := netpkt.TCPHeaderLen
		if h.Proto == netpkt.ProtoUDP {
			hdrLen = netpkt.UDPHeaderLen
		}
		if len(payload) < hdrLen {
			t.stats.Dropped++
			return netpkt.IP{}, false
		}
		guest, port, ok := t.matchInbound(h.Proto, binary.BigEndian.Uint16(payload[2:4]))
		if !ok {
			t.stats.Dropped++
			return netpkt.IP{}, false
		}
		binary.BigEndian.PutUint16(payload[2:4], port)
		dst = guest
	case netpkt.ProtoICMP:
		eh, _, ok := netpkt.DecodeICMPEcho(payload)
		if !ok || eh.Type != netpkt.ICMPEchoReply {
			t.stats.Dropped++
			return netpkt.IP{}, false
		}
		f := t.reverse[eh.ID]
		if f == nil || f.key.proto != netpkt.ProtoICMP {
			t.stats.Dropped++
			return netpkt.IP{}, false
		}
		binary.BigEndian.PutUint16(payload[4:6], f.key.guestPt)
		reICMPChecksum(payload)
		dst = f.key.guestIP
	default:
		t.stats.Dropped++
		return netpkt.IP{}, false
	}
	rewriteIP(pkt, h.Src, dst)
	t.stats.Inbound++
	return dst, true
}

// rewriteIP patches the addresses into an IPv4 header in place, decrements
// the TTL, and recomputes the header checksum.
func rewriteIP(pkt []byte, src, dst netpkt.IP) {
	copy(pkt[12:16], src[:])
	copy(pkt[16:20], dst[:])
	pkt[8]-- // TTL
	pkt[10], pkt[11] = 0, 0
	binary.BigEndian.PutUint16(pkt[10:12], netpkt.Checksum(pkt[:netpkt.IPHeaderLen]))
}

// reICMPChecksum recomputes the checksum of an ICMP message in place.
func reICMPChecksum(msg []byte) {
	msg[2], msg[3] = 0, 0
	binary.BigEndian.PutUint16(msg[2:4], netpkt.Checksum(msg))
}

// TranslateOutbound is the copying form of RewriteOutbound, kept for tests
// and cold paths: it returns a rewritten copy or nil.
func (t *Translator) TranslateOutbound(pkt []byte) []byte {
	cp := append([]byte(nil), pkt...)
	if !t.RewriteOutbound(cp) {
		return nil
	}
	return cp
}

// TranslateInbound is the copying form of RewriteInbound: it returns a
// rewritten copy and the guest address, or nil.
func (t *Translator) TranslateInbound(pkt []byte) ([]byte, netpkt.IP) {
	cp := append([]byte(nil), pkt...)
	dst, ok := t.RewriteInbound(cp)
	if !ok {
		return nil, netpkt.IP{}
	}
	return cp, dst
}

// matchInbound resolves an inbound destination port via flows then static
// forwards.
func (t *Translator) matchInbound(proto uint8, extPort uint16) (netpkt.IP, uint16, bool) {
	if f := t.reverse[extPort]; f != nil && f.key.proto == proto {
		f.lastUse = t.eng.Now()
		return f.key.guestIP, f.key.guestPt, true
	}
	if fwd, ok := t.forwards[extPort]; ok {
		return fwd.ip, fwd.port, true
	}
	return netpkt.IP{}, 0, false
}

// Expire drops flows idle for longer than maxIdle (the translator's GC,
// called periodically by the network application).
func (t *Translator) Expire(maxIdle sim.Time) int {
	dropped := 0
	now := t.eng.Now()
	for key, f := range t.flows {
		if now-f.lastUse > maxIdle {
			delete(t.flows, key)
			delete(t.reverse, f.extPort)
			dropped++
		}
	}
	return dropped
}
