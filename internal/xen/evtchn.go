package xen

import (
	"fmt"

	"kite/internal/sim"
)

// Port identifies an event channel endpoint within one domain.
type Port uint32

// warmWindow is how long after its last execution a vCPU still takes
// interrupts without the full halt-wakeup path (shallow C-state residency,
// tickless grace). Sustained workloads therefore see much lower event
// latency than one-shot pings — the gap between Figure 7's ping and
// netperf rows.
const warmWindow = 75 * sim.Microsecond

type chanState int

const (
	chanUnbound chanState = iota
	chanConnected
	chanClosed
)

// channel is one endpoint of an inter-domain event channel.
type channel struct {
	port    Port
	dom     *Domain
	state   chanState
	peerDom DomID // for unbound: the only domain allowed to bind
	peer    *channel

	handler func()
	// cpu, when set, pins this endpoint to one vCPU: Notify charges it on
	// send and raise delivers to it (on its shard engine) on receive. Pinned
	// ports are what let per-queue event channels live entirely on their
	// queue's cluster shard.
	cpu *sim.CPU
	// pending models the per-channel pending bit: upcalls coalesce while
	// one is already in flight, exactly like Xen's level-triggered events.
	pending bool
	// lastEvent is the virtual time of the last delivered upcall on a
	// pinned port (shard-local clock): a port streaming interrupts keeps
	// its vCPU out of deep idle even when the handler work is charged
	// elsewhere, so recent delivery counts as warmth like recent execution.
	lastEvent sim.Time
	// deliverF is the cached upcall closure; raise schedules it without
	// allocating on every event.
	deliverF func()
	// demux, when set, routes this endpoint's upcalls through a batched
	// demux group (see demux.go): raise marks demuxIdx's bit instead of
	// scheduling a per-channel upcall.
	demux    *Demux
	demuxIdx int

	sends     uint64
	delivered uint64
}

// AllocUnbound allocates a new unbound channel that remote may later bind
// (EVTCHNOP_alloc_unbound). It returns the local port to advertise in
// xenstore.
func (d *Domain) AllocUnbound(remote DomID) Port {
	d.nextPort++
	ch := &channel{port: d.nextPort, dom: d, state: chanUnbound, peerDom: remote}
	d.setPort(ch.port, ch)
	return ch.port
}

// BindInterdomain connects a local port to a remote domain's advertised
// unbound port (EVTCHNOP_bind_interdomain).
func (d *Domain) BindInterdomain(remote DomID, remotePort Port) (Port, error) {
	rd := d.hv.Domain(remote)
	if rd == nil {
		return 0, fmt.Errorf("xen: bind to dead domain %d", remote)
	}
	rch := rd.port(remotePort)
	if rch == nil || rch.state != chanUnbound {
		return 0, fmt.Errorf("xen: remote port %d/%d not unbound", remote, remotePort)
	}
	if rch.peerDom != d.ID {
		return 0, fmt.Errorf("xen: port %d/%d reserved for domain %d, not %d",
			remote, remotePort, rch.peerDom, d.ID)
	}
	d.nextPort++
	lch := &channel{port: d.nextPort, dom: d, state: chanConnected, peerDom: remote, peer: rch}
	d.setPort(lch.port, lch)
	rch.state = chanConnected
	rch.peer = lch
	return lch.port, nil
}

// SetHandler installs the upcall handler for a local port. The handler runs
// on one of the domain's vCPUs after the domain's IRQLatency.
func (d *Domain) SetHandler(port Port, fn func()) error {
	ch := d.port(port)
	if ch == nil {
		return fmt.Errorf("xen: SetHandler on unknown port %d", port)
	}
	ch.handler = fn
	return nil
}

// BindPortCPU pins a local port to one vCPU: sends charge that vCPU and
// upcalls are delivered on it (through its engine, which may be a cluster
// shard). Binding is done at connect time, before any traffic flows.
func (d *Domain) BindPortCPU(port Port, cpu *sim.CPU) error {
	ch := d.port(port)
	if ch == nil {
		return fmt.Errorf("xen: BindPortCPU on unknown port %d", port)
	}
	ch.cpu = cpu
	ch.deliverF = ch.deliver // eager: first raise may come from another shard's peer
	return nil
}

// Notify sends an event on a connected local port (EVTCHNOP_send). The
// hypercall is charged to the calling domain; delivery to the peer's
// handler happens after the peer's IRQ latency. Notifying a closed channel
// is a silent no-op, as on real Xen where the peer may have gone away.
func (d *Domain) Notify(port Port) {
	ch := d.port(port)
	if ch == nil {
		panic(fmt.Sprintf("xen: notify on unknown port %d in %s", port, d.Name))
	}
	d.hv.stats.eventSends.Add(1)
	if ch.cpu != nil {
		d.chargeOn(ch.cpu, d.hv.Costs.Base+d.hv.Costs.EventSend)
	} else {
		d.charge(d.hv.Costs.Base + d.hv.Costs.EventSend)
	}
	ch.sends++
	if ch.state != chanConnected || ch.peer == nil {
		return
	}
	ch.peer.raise()
}

// raise marks the channel pending on its owning domain and schedules the
// upcall if one is not already in flight. Delivery latency depends on the
// vCPU's state: waking an idle (halted) vCPU costs the domain's full
// IRQLatency (hypervisor unblock + VM entry), while a running vCPU takes
// the upcall almost immediately — the effect that makes cold request-
// response latency much worse than streaming latency on real Xen.
func (c *channel) raise() {
	if c.dom.dead || c.pending {
		return
	}
	c.pending = true
	if c.demux != nil {
		c.demux.mark(c.demuxIdx)
		return
	}
	cpu := c.cpu
	eng := c.dom.hv.Eng
	lat := c.dom.IRQLatency
	if cpu != nil {
		// Pinned port: deliver on the bound vCPU's engine (its cluster
		// shard) and judge warmth from that vCPU alone — shared-pool state
		// is off limits from a shard.
		eng = cpu.Engine()
		now := eng.Now()
		if cpu.RecentlyActive(now, warmWindow) ||
			(c.lastEvent > 0 && now-c.lastEvent <= warmWindow) {
			lat /= 16
		}
	} else {
		cpu = c.dom.CPUs.Pick()
		if c.dom.CPUs.RecentlyActive(eng.Now(), warmWindow) {
			lat /= 16 // vCPU running or in a shallow idle state: cheap upcall
		}
	}
	if c.deliverF == nil {
		c.deliverF = c.deliver
	}
	eng.Schedule(cpu.FreeAt()+lat, c.deliverF)
}

// deliver is the upcall body: clear the pending bit and run the handler.
func (c *channel) deliver() {
	c.pending = false
	if c.dom.dead || c.state != chanConnected {
		return
	}
	c.delivered++
	if c.cpu != nil {
		c.lastEvent = c.cpu.Engine().Now()
	}
	if c.handler != nil {
		c.handler()
	}
}

// Close shuts a local port; the peer transitions to closed too.
func (d *Domain) Close(port Port) error {
	if d.port(port) == nil {
		return fmt.Errorf("xen: close of unknown port %d", port)
	}
	d.closePort(port)
	return nil
}

func (d *Domain) closePort(port Port) {
	ch := d.port(port)
	if ch == nil {
		return
	}
	if ch.peer != nil {
		ch.peer.state = chanClosed
		ch.peer.peer = nil
	}
	ch.state = chanClosed
	ch.peer = nil
	d.ports[port] = nil
}

// ChannelStats reports (sends, deliveries) for a local port; zero values
// for unknown ports.
func (d *Domain) ChannelStats(port Port) (sends, delivered uint64) {
	if ch := d.port(port); ch != nil {
		return ch.sends, ch.delivered
	}
	return 0, 0
}
