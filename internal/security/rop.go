package security

import (
	"kite/internal/guestos"
	"kite/internal/sim"
)

// Category is a Follner et al. gadget class (the twelve categories of
// Figure 5).
type Category int

// Gadget categories.
const (
	CatDataMove Category = iota
	CatArithmetic
	CatLogic
	CatControlFlow
	CatShiftRotate
	CatSettingFlags
	CatString
	CatFloating
	CatMisc
	CatMMX
	CatNOP
	CatRET
	NumCategories
)

var categoryNames = [NumCategories]string{
	"DataMove", "Arithmetic", "Logic", "ControlFlow", "ShiftAndRotate",
	"SettingFlags", "String", "Floating", "Misc", "MMX", "Nop", "Ret",
}

func (c Category) String() string {
	if c >= 0 && c < NumCategories {
		return categoryNames[c]
	}
	return "?"
}

// instr describes one decodable opcode of the simplified x86-64 subset the
// scanner understands (opcode byte -> total instruction length and class).
type instr struct {
	len int
	cat Category
}

// opcodeTable is the decoder. Bytes outside the table terminate a decode
// attempt, exactly as an undecodable byte breaks a real gadget chain.
var opcodeTable = map[byte]instr{
	// data movement
	0x89: {2, CatDataMove}, 0x8B: {2, CatDataMove}, 0x8D: {2, CatDataMove},
	0x50: {1, CatDataMove}, 0x51: {1, CatDataMove}, 0x52: {1, CatDataMove},
	0x53: {1, CatDataMove}, 0x54: {1, CatDataMove}, 0x55: {1, CatDataMove},
	0x56: {1, CatDataMove}, 0x57: {1, CatDataMove},
	0x58: {1, CatDataMove}, 0x59: {1, CatDataMove}, 0x5A: {1, CatDataMove},
	0x5B: {1, CatDataMove}, 0x5C: {1, CatDataMove}, 0x5D: {1, CatDataMove},
	0x5E: {1, CatDataMove}, 0x5F: {1, CatDataMove},
	0xB8: {5, CatDataMove}, 0x88: {2, CatDataMove}, 0x87: {2, CatDataMove},
	// arithmetic
	0x01: {2, CatArithmetic}, 0x03: {2, CatArithmetic}, 0x05: {5, CatArithmetic},
	0x29: {2, CatArithmetic}, 0x2B: {2, CatArithmetic}, 0x2D: {5, CatArithmetic},
	0x40: {1, CatArithmetic}, 0x41: {1, CatArithmetic}, 0x6B: {3, CatArithmetic},
	// logic
	0x09: {2, CatLogic}, 0x0B: {2, CatLogic}, 0x21: {2, CatLogic},
	0x23: {2, CatLogic}, 0x25: {5, CatLogic}, 0x31: {2, CatLogic},
	0x33: {2, CatLogic}, 0x39: {2, CatLogic}, 0x3B: {2, CatLogic},
	0x85: {2, CatLogic}, 0xF7: {2, CatLogic},
	// control flow
	0xE8: {5, CatControlFlow}, 0xE9: {5, CatControlFlow}, 0xEB: {2, CatControlFlow},
	0x74: {2, CatControlFlow}, 0x75: {2, CatControlFlow}, 0x7C: {2, CatControlFlow},
	0x7D: {2, CatControlFlow}, 0xFF: {2, CatControlFlow},
	// shift and rotate
	0xC1: {3, CatShiftRotate}, 0xD1: {2, CatShiftRotate}, 0xD3: {2, CatShiftRotate},
	// flags
	0xF5: {1, CatSettingFlags}, 0xF8: {1, CatSettingFlags}, 0xF9: {1, CatSettingFlags},
	0xFC: {1, CatSettingFlags}, 0xFD: {1, CatSettingFlags},
	// string ops
	0xA4: {1, CatString}, 0xA5: {1, CatString}, 0xAA: {1, CatString},
	0xAB: {1, CatString}, 0xAC: {1, CatString}, 0xAD: {1, CatString},
	// floating point / SSE (0F escape, simplified to 3 bytes)
	0x0F: {3, CatFloating}, 0xD8: {2, CatFloating}, 0xD9: {2, CatFloating},
	// MMX-ish (66 prefix form, simplified)
	0x66: {3, CatMMX},
	// misc
	0xF4: {1, CatMisc}, 0xCC: {1, CatMisc}, 0xCD: {2, CatMisc},
	// nop
	0x90: {1, CatNOP},
	// returns
	0xC3: {1, CatRET}, 0xC2: {3, CatRET},
}

// genWeights drives the synthetic code generator with a compiled-code-like
// instruction mix. Each entry is (opcode, weight).
var genWeights = []struct {
	op     byte
	weight int
}{
	{0x89, 90}, {0x8B, 90}, {0x8D, 40}, {0x55, 25}, {0x5D, 25}, {0x50, 20},
	{0x58, 20}, {0xB8, 30}, {0x88, 20},
	{0x01, 35}, {0x03, 30}, {0x05, 15}, {0x29, 20}, {0x2B, 15},
	{0x31, 30}, {0x21, 20}, {0x09, 15}, {0x85, 35}, {0x39, 30},
	{0xE8, 45}, {0xE9, 15}, {0xEB, 15}, {0x74, 35}, {0x75, 35}, {0xFF, 20},
	{0xC1, 12}, {0xD3, 6},
	{0xF8, 2}, {0xFC, 2},
	{0xA5, 3}, {0xAB, 3},
	{0x0F, 60}, {0xD9, 5},
	{0x66, 18},
	{0x90, 20}, {0xCC, 2},
	{0xC3, 7}, {0xC2, 1},
}

// GenerateCode emits n bytes of synthetic executable text with a realistic
// opcode mix, deterministically from seed.
func GenerateCode(n int, seed uint64) []byte {
	rng := sim.NewRand(seed)
	var totalWeight int
	for _, w := range genWeights {
		totalWeight += w.weight
	}
	out := make([]byte, 0, n)
	for len(out) < n {
		pick := rng.Intn(totalWeight)
		var op byte
		for _, w := range genWeights {
			pick -= w.weight
			if pick < 0 {
				op = w.op
				break
			}
		}
		info := opcodeTable[op]
		out = append(out, op)
		for i := 1; i < info.len && len(out) < n; i++ {
			out = append(out, byte(rng.Uint64()))
		}
	}
	return out[:n]
}

// maxGadgetInstrs and maxGadgetBytes bound the backward search, following
// the usual Ropper configuration of short gadgets.
const (
	maxGadgetInstrs = 5
	maxGadgetBytes  = 20
)

// ScanGadgets walks code and counts ROP gadgets per category: every
// decodable instruction sequence of 1..5 instructions ending exactly at a
// ret, classified by its first instruction (plus the bare ret itself).
func ScanGadgets(code []byte) [NumCategories]uint64 {
	var counts [NumCategories]uint64
	for pos := 0; pos < len(code); pos++ {
		op := code[pos]
		if op != 0xC3 && op != 0xC2 {
			continue
		}
		counts[CatRET]++
		lo := pos - maxGadgetBytes
		if lo < 0 {
			lo = 0
		}
		for start := lo; start < pos; start++ {
			if cat, ok := decodesTo(code, start, pos); ok {
				counts[cat]++
			}
		}
	}
	return counts
}

// decodesTo checks whether code[start:ret] decodes as 1..5 complete
// instructions landing exactly on ret, returning the first instruction's
// category.
func decodesTo(code []byte, start, ret int) (Category, bool) {
	pos := start
	first := Category(-1)
	for n := 0; n < maxGadgetInstrs; n++ {
		if pos >= ret {
			break
		}
		info, ok := opcodeTable[code[pos]]
		if !ok {
			return 0, false
		}
		if first < 0 {
			first = info.cat
		}
		if info.cat == CatRET {
			return 0, false // an embedded ret would have ended the gadget
		}
		pos += info.len
		if pos == ret {
			return first, true
		}
	}
	return 0, false
}

// sampleBytes bounds how much synthetic text is actually scanned; density
// is extrapolated linearly (the generator's text is statistically
// homogeneous), keeping multi-hundred-MB kernels tractable.
const sampleBytes = 2 << 20

// GadgetCounts scans (a sample of) a kernel configuration and returns
// extrapolated per-category totals.
func GadgetCounts(p guestos.GadgetScanProfile) [NumCategories]uint64 {
	n := int(p.CodeBytes)
	scale := 1.0
	if n > sampleBytes {
		scale = float64(n) / float64(sampleBytes)
		n = sampleBytes
	}
	counts := ScanGadgets(GenerateCode(n, p.Seed))
	if scale != 1 {
		for i := range counts {
			counts[i] = uint64(float64(counts[i]) * scale)
		}
	}
	return counts
}

// TotalGadgets sums a count vector.
func TotalGadgets(counts [NumCategories]uint64) uint64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	return total
}
