// Package sim provides the deterministic discrete-event simulation core on
// which the whole Kite reproduction runs: a virtual clock with an event
// heap, virtual CPUs with busy-time accounting, and wakeable tasks that
// model the paper's threaded execution model (netback's pusher/soft_start
// threads, blkback's request thread, the backend-invocation thread).
//
// Virtual time is measured in integer nanoseconds (sim.Time). All mechanism
// in the repository (rings, grant copies, packet movement) executes for
// real; sim only decides *when* each step happens and how much virtual CPU
// it consumes.
//
// The event queue is the hottest data structure in the repository: every
// frame, segment, and wakeup of every experiment passes through it, so
// events-per-second of this engine bounds the throughput of the whole
// evaluation suite. It is therefore built for zero steady-state allocation:
// events are plain values in a slice-backed 4-ary min-heap (no boxing, no
// per-event heap object, no interface conversions), and popped slots are
// recycled in place — the slice's spare capacity acts as the event
// free-list, so Schedule/Step allocate only when the queue grows past its
// high-water mark.
//
//kite:deterministic
package sim

import "fmt"

// Time is virtual time in nanoseconds since engine start.
type Time int64

// Convenient duration units (all expressed in Time nanoseconds).
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds returns t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis returns t as floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Micros returns t as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Millis())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// event is stored by value inside the heap slice; it never escapes to the
// Go heap on its own.
type event struct {
	at  Time
	seq uint64 // tie-break so equal-time events run FIFO
	fn  func()
}

// before is the heap order: earliest time first, FIFO within a timestamp.
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// arity is the fan-out of the d-ary heap. Four children per node keeps the
// tree half as deep as a binary heap, which matters because the dominant
// operation is siftDown on Step: fewer levels means fewer cache lines
// touched per pop, at the price of three extra comparisons per level that
// all hit the same lines.
const arity = 4

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; one whole simulation runs on one goroutine, which is what
// makes runs bit-for-bit deterministic. Distinct Engine instances share no
// state at all, so independent simulations may run on concurrent goroutines
// (the parallel experiment runner relies on exactly this).
//
// An Engine may also be one shard of a Cluster (see cluster.go): it then
// keeps its single-goroutine-per-window discipline, and all cross-shard
// traffic flows through Post and the barrier-merged inbox. Run/Step and
// friends on a clustered engine drive the whole cluster.
type Engine struct {
	// Shard engines of one cluster are mutated concurrently mid-window (by
	// design they share nothing logically); the guard pads keep one
	// engine's hot fields from sharing a boundary cache line with whatever
	// object the allocator placed next to it — typically a sibling shard.
	_         [64]byte
	now       Time
	heap      []event // slice-backed 4-ary min-heap, values not pointers
	seq       uint64
	processed uint64

	// Sharding state (nil/zero for a standalone engine; see cluster.go).
	cluster     *Cluster
	shard       int
	outbox      [][]postRec // staged posts, indexed by destination shard
	postSeq     uint64      // deterministic per-shard post tie-break
	dataPosts   uint64      // non-release posts staged (ends a free sprint)
	stagedPosts uint64      // posts staged since the last merge (skip empty barriers)
	inbox       []postRec   // barrier-merged posts, consumed front to back
	inboxHead   int
	windowDone  uint64 // events run in the current window (collected at the barrier)
	_           [64]byte
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far (useful as a
// livelock guard in tests); cluster-wide when sharded.
func (e *Engine) Processed() uint64 {
	if e.cluster != nil {
		return e.cluster.Processed()
	}
	return e.processed
}

// Pending returns the number of scheduled-but-unexecuted events
// (cluster-wide when sharded).
func (e *Engine) Pending() int {
	if e.cluster != nil {
		return e.cluster.Pending()
	}
	return len(e.heap)
}

// Schedule runs fn at virtual time at. Scheduling in the past is a
// programming error and panics: it would silently reorder causality.
//
// Steady-state cost: one slice append into recycled capacity plus a
// siftUp — no allocation once the heap has reached its high-water mark.
// Callers on hot paths should pass a long-lived func value (method values
// and fresh closures allocate at the call site; see Task and Batch).
func (e *Engine) Schedule(at Time, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	e.seq++
	e.heap = append(e.heap, event{at: at, seq: e.seq, fn: fn})
	e.siftUp(len(e.heap) - 1)
}

// After runs fn d nanoseconds from now. Negative d panics.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.Schedule(e.now+d, fn)
}

func (e *Engine) siftUp(i int) {
	h := e.heap
	ev := h[i]
	for i > 0 {
		p := (i - 1) / arity
		if !ev.before(&h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = ev
}

func (e *Engine) siftDown(i int) {
	h := e.heap
	n := len(h)
	ev := h[i]
	for {
		first := arity*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + arity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if h[c].before(&h[best]) {
				best = c
			}
		}
		if !h[best].before(&ev) {
			break
		}
		h[i] = h[best]
		i = best
	}
	h[i] = ev
}

// Step executes the single earliest pending event, advancing the clock to
// its timestamp. It reports whether an event was executed. On a clustered
// engine it steps the whole cluster (globally earliest event).
func (e *Engine) Step() bool {
	if e.cluster != nil {
		return e.cluster.Step()
	}
	if len(e.heap) == 0 {
		return false
	}
	e.stepHeap()
	return true
}

// stepHeap pops and runs the heap root; the heap must be non-empty.
func (e *Engine) stepHeap() {
	n := len(e.heap)
	root := e.heap[0]
	n--
	if n > 0 {
		e.heap[0] = e.heap[n]
	}
	// Drop the closure reference from the vacated slot so the spare
	// capacity (the free-list) does not pin dead callbacks; the slot's
	// memory itself is recycled by the next Schedule.
	e.heap[n].fn = nil
	e.heap = e.heap[:n]
	if n > 1 {
		e.siftDown(0)
	}
	e.now = root.at
	e.processed++
	root.fn()
}

// Run executes events until none remain (cluster-wide when sharded).
func (e *Engine) Run() {
	if e.cluster != nil {
		e.cluster.Run()
		return
	}
	for e.Step() {
	}
}

// RunUntil executes every event with timestamp <= t and then advances the
// clock to exactly t (even if the queue drained earlier or further events
// remain beyond t).
func (e *Engine) RunUntil(t Time) {
	if t < e.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now %v", t, e.now))
	}
	if e.cluster != nil {
		e.cluster.RunUntil(t)
		return
	}
	for len(e.heap) > 0 && e.heap[0].at <= t {
		e.Step()
	}
	e.now = t
}

// RunFor executes events for the next d nanoseconds of virtual time.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }

// RunCapped runs until the queue drains or maxEvents have been processed,
// reporting whether the queue drained. It guards tests against livelock.
func (e *Engine) RunCapped(maxEvents uint64) bool {
	if e.cluster != nil {
		return e.cluster.RunCapped(maxEvents)
	}
	start := e.processed
	for e.Step() {
		if e.processed-start >= maxEvents {
			return false
		}
	}
	return true
}
