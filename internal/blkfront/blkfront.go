// Package blkfront implements the paravirtual block frontend driver used
// by DomU guests: a virtual disk whose reads and writes travel the blkif
// ring to a blkback instance in the storage driver domain. It negotiates
// and uses the same optimizations the paper implements in Kite's blkback —
// persistent grant references and indirect segments (§3.3, §4.4) — and
// splits large I/O into as few ring requests as the negotiated limits
// allow.
package blkfront

import (
	"fmt"

	"kite/internal/blkif"
	"kite/internal/mem"
	"kite/internal/sim"
	"kite/internal/xen"
	"kite/internal/xenbus"
)

// Costs models the guest-side software path per request.
type Costs struct {
	PerRequest sim.Time // block layer + driver work per ring request
	PerKBCopy  sim.Time // memcpy per KiB for persistent-grant staging
}

// GuestCosts returns the Ubuntu DomU profile.
func GuestCosts() Costs {
	return Costs{PerRequest: 1200 * sim.Nanosecond, PerKBCopy: 55 * sim.Nanosecond}
}

// Stats counts frontend activity.
type Stats struct {
	Reads, Writes, Flushes uint64
	ReadBytes, WriteBytes  uint64
	RingRequests           uint64
	IndirectRequests       uint64
	QueuedFull             uint64
}

type poolPage struct {
	page *mem.Page
	ref  xen.GrantRef
}

// reqPart tracks one in-flight ring request belonging to a caller op.
type reqPart struct {
	op       blkif.Op
	pages    []poolPage
	indirect []poolPage // descriptor pages (granted, freed after response)
	readDst  []byte     // for reads: destination slice for this part
	parent   *callerOp
}

type callerOp struct {
	remaining int
	err       error
	readBuf   []byte
	done      func(data []byte, err error)
}

// Device is one vbd frontend.
type Device struct {
	eng     *sim.Engine
	dom     *xen.Domain
	bus     *xenbus.Bus
	reg     *blkif.Registry
	devid   int
	backDom xen.DomID
	costs   Costs

	frontPath string
	backPath  string

	ring *blkif.Ring
	port xen.Port

	persistent  bool
	maxIndirect int
	sectors     int64
	flushOK     bool

	pool     []poolPage // persistent-grant page pool
	inflight map[uint64]*reqPart
	nextID   uint64
	pending  []func() bool // ring-full backlog: retried on completions
	ready    bool
	onReady  func()

	stats Stats
}

// Config describes the frontend to create.
type Config struct {
	Dom      *xen.Domain
	Bus      *xenbus.Bus
	Registry *blkif.Registry
	DevID    int
	BackDom  xen.DomID
	Costs    Costs
	OnReady  func()
}

// New creates the frontend for a toolstack-created vbd and starts
// negotiation.
func New(eng *sim.Engine, cfg Config) *Device {
	costs := cfg.Costs
	if costs.PerRequest == 0 {
		costs = GuestCosts()
	}
	d := &Device{
		eng: eng, dom: cfg.Dom, bus: cfg.Bus, reg: cfg.Registry,
		devid: cfg.DevID, backDom: cfg.BackDom, costs: costs,
		frontPath: xenbus.FrontendPath(xenbus.DomID(cfg.Dom.ID), "vbd", cfg.DevID),
		backPath:  xenbus.BackendPath(xenbus.DomID(cfg.BackDom), "vbd", xenbus.DomID(cfg.Dom.ID), cfg.DevID),
		inflight:  make(map[uint64]*reqPart),
		onReady:   cfg.OnReady,
	}
	d.bus.OnStateChange(d.backPath, func(s xenbus.State) {
		switch s {
		case xenbus.StateInitWait:
			if d.ring == nil {
				d.init()
			}
		case xenbus.StateConnected:
			if !d.ready && d.ring != nil {
				d.connect()
			}
		case xenbus.StateClosing, xenbus.StateClosed:
			d.ready = false
		}
	})
	return d
}

// init reads the backend's advertised features and publishes the ring.
func (d *Device) init() {
	st := d.bus.Store()
	d.persistent = d.bus.ReadFeature(d.backPath, "feature-persistent")
	d.flushOK = d.bus.ReadFeature(d.backPath, "feature-flush-cache")
	if v, ok := st.ReadInt(d.backPath + "/feature-max-indirect-segments"); ok {
		d.maxIndirect = int(v)
		if d.maxIndirect > blkif.MaxSegsIndirect {
			d.maxIndirect = blkif.MaxSegsIndirect
		}
	}
	if v, ok := st.ReadInt(d.backPath + "/sectors"); ok {
		d.sectors = v
	}

	d.ring = blkif.NewRing()
	d.reg.Publish(d.dom.ID, d.devid, &blkif.Channel{Ring: d.ring})
	d.port = d.dom.AllocUnbound(d.backDom)
	d.dom.SetHandler(d.port, d.onEvent)

	st.Writef(d.frontPath+"/ring-ref", "%d", d.devid+100)
	st.Writef(d.frontPath+"/event-channel", "%d", d.port)
	st.Write(d.frontPath+"/protocol", "x86_64-abi")
	d.bus.WriteFeature(d.frontPath, "feature-persistent", d.persistent)
	if err := d.bus.SwitchState(d.frontPath, xenbus.StateInitialised); err != nil {
		panic(fmt.Sprintf("blkfront: %v", err))
	}
}

func (d *Device) connect() {
	d.ready = true
	if err := d.bus.SwitchState(d.frontPath, xenbus.StateConnected); err != nil {
		panic(fmt.Sprintf("blkfront: %v", err))
	}
	if d.onReady != nil {
		d.onReady()
	}
}

// Ready reports whether the device is connected.
func (d *Device) Ready() bool { return d.ready }

// Engine returns the simulation engine the device runs on.
func (d *Device) Engine() *sim.Engine { return d.eng }

// SectorCount returns the virtual disk size in sectors.
func (d *Device) SectorCount() int64 { return d.sectors }

// Persistent reports whether persistent grants were negotiated.
func (d *Device) Persistent() bool { return d.persistent }

// MaxIndirect returns the negotiated indirect segment limit (0 = none).
func (d *Device) MaxIndirect() int { return d.maxIndirect }

// Stats returns a snapshot of the counters.
func (d *Device) Stats() Stats { return d.stats }

// maxBytesPerRequest returns the largest single ring request payload.
func (d *Device) maxBytesPerRequest() int {
	if d.maxIndirect > 0 {
		return d.maxIndirect * mem.PageSize
	}
	return blkif.MaxSegsDirect * mem.PageSize
}

// getPage hands out a granted page: from the persistent pool when
// negotiated (grant stays live across requests), else freshly granted.
func (d *Device) getPage() poolPage {
	if d.persistent {
		if n := len(d.pool); n > 0 {
			p := d.pool[n-1]
			d.pool = d.pool[:n-1]
			return p
		}
	}
	page := d.dom.Arena.MustAlloc()
	ref := d.dom.GrantAccess(d.backDom, page, false)
	return poolPage{page: page, ref: ref}
}

// putPage returns a page after response: to the pool (persistent) or
// revoked and freed.
func (d *Device) putPage(p poolPage) {
	if d.persistent {
		d.pool = append(d.pool, p)
		return
	}
	if err := d.dom.EndAccess(p.ref); err == nil {
		d.dom.Arena.Free(p.page)
	}
}

// ReadSectors reads n bytes (sector-aligned) starting at sector.
func (d *Device) ReadSectors(sector int64, n int, cb func(data []byte, err error)) {
	if err := d.validate(sector, n); err != nil {
		d.eng.After(0, func() { cb(nil, err) })
		return
	}
	d.stats.Reads++
	d.stats.ReadBytes += uint64(n)
	op := &callerOp{readBuf: make([]byte, n), done: cb}
	d.split(blkif.OpRead, sector, nil, op)
}

// WriteSectors writes sector-aligned data at sector.
func (d *Device) WriteSectors(sector int64, data []byte, cb func(err error)) {
	if err := d.validate(sector, len(data)); err != nil {
		d.eng.After(0, func() { cb(err) })
		return
	}
	d.stats.Writes++
	d.stats.WriteBytes += uint64(len(data))
	op := &callerOp{done: func(_ []byte, err error) { cb(err) }}
	d.split(blkif.OpWrite, sector, data, op)
}

// Flush issues a cache-flush barrier.
func (d *Device) Flush(cb func(err error)) {
	d.stats.Flushes++
	op := &callerOp{remaining: 1, done: func(_ []byte, err error) { cb(err) }}
	d.enqueue(func() bool { return d.pushFlush(op) })
}

func (d *Device) validate(sector int64, n int) error {
	if !d.ready {
		return fmt.Errorf("blkfront: device %d not connected", d.devid)
	}
	if n%blkif.SectorSize != 0 || n <= 0 {
		return fmt.Errorf("blkfront: unaligned or empty i/o (%d bytes)", n)
	}
	if sector < 0 || sector+int64(n/blkif.SectorSize) > d.sectors {
		return fmt.Errorf("blkfront: i/o beyond device (sector %d + %d bytes)", sector, n)
	}
	return nil
}

// split chops a caller op into ring requests within the negotiated limits.
func (d *Device) split(op blkif.Op, sector int64, data []byte, caller *callerOp) {
	maxB := d.maxBytesPerRequest()
	n := len(data)
	if op == blkif.OpRead {
		n = len(caller.readBuf)
	}
	var parts int
	for off := 0; off < n; off += maxB {
		parts++
	}
	caller.remaining = parts
	for off := 0; off < n; off += maxB {
		size := n - off
		if size > maxB {
			size = maxB
		}
		off := off
		sec := sector + int64(off/blkif.SectorSize)
		var chunk []byte
		if op == blkif.OpWrite {
			chunk = data[off : off+size]
		}
		d.enqueue(func() bool { return d.pushRequest(op, sec, size, chunk, off, caller) })
	}
}

// enqueue runs fn now or queues it until ring space frees up.
func (d *Device) enqueue(fn func() bool) {
	if len(d.pending) == 0 && fn() {
		return
	}
	d.stats.QueuedFull++
	d.pending = append(d.pending, fn)
}

func (d *Device) pumpPending() {
	for len(d.pending) > 0 && d.pending[0]() {
		d.pending = d.pending[1:]
	}
}

// pushRequest builds and pushes one ring request; false if the ring is
// full.
func (d *Device) pushRequest(op blkif.Op, sector int64, size int, writeData []byte, readOff int, caller *callerOp) bool {
	nsegs := (size + mem.PageSize - 1) / mem.PageSize
	indirect := nsegs > blkif.MaxSegsDirect
	if d.ring.Full() {
		return false
	}
	d.nextID++
	id := d.nextID
	part := &reqPart{op: op, parent: caller}

	segs := make([]blkif.Segment, 0, nsegs)
	for i := 0; i < nsegs; i++ {
		segBytes := size - i*mem.PageSize
		if segBytes > mem.PageSize {
			segBytes = mem.PageSize
		}
		pp := d.getPage()
		part.pages = append(part.pages, pp)
		if op == blkif.OpWrite {
			pp.page.CopyInto(0, writeData[i*mem.PageSize:i*mem.PageSize+segBytes])
		}
		segs = append(segs, blkif.Segment{
			Ref:       pp.ref,
			FirstSect: 0,
			LastSect:  segBytes/blkif.SectorSize - 1,
		})
	}
	if op == blkif.OpRead {
		part.readDst = caller.readBuf[readOff : readOff+size]
	}

	req := blkif.Request{ID: id, Op: op, Sector: sector}
	cost := d.costs.PerRequest
	if op == blkif.OpWrite && d.persistent {
		cost += sim.Time(size) * d.costs.PerKBCopy / 1024
	}
	if indirect {
		// Write descriptors into granted indirect pages.
		npages := (nsegs + blkif.SegsPerIndirectPage - 1) / blkif.SegsPerIndirectPage
		req.Op = blkif.OpIndirect
		req.Imm = op
		req.IndirectSegs = nsegs
		d.stats.IndirectRequests++
		for pi := 0; pi < npages; pi++ {
			ip := d.getPage()
			part.indirect = append(part.indirect, ip)
			for si := pi * blkif.SegsPerIndirectPage; si < nsegs && si < (pi+1)*blkif.SegsPerIndirectPage; si++ {
				blkif.PutSegment(ip.page, si%blkif.SegsPerIndirectPage, segs[si])
			}
			req.IndirectRefs = append(req.IndirectRefs, ip.ref)
		}
	} else {
		req.Segs = segs
	}

	d.inflight[id] = part
	d.dom.CPUs.Charge(cost)
	d.stats.RingRequests++
	if !d.ring.PushRequest(req) {
		panic("blkfront: ring full despite check")
	}
	if d.ring.PushRequestsAndCheckNotify() {
		d.dom.Notify(d.port)
	}
	return true
}

func (d *Device) pushFlush(caller *callerOp) bool {
	if d.ring.Full() {
		return false
	}
	d.nextID++
	id := d.nextID
	d.inflight[id] = &reqPart{op: blkif.OpFlush, parent: caller}
	d.ring.PushRequest(blkif.Request{ID: id, Op: blkif.OpFlush})
	d.stats.RingRequests++
	if d.ring.PushRequestsAndCheckNotify() {
		d.dom.Notify(d.port)
	}
	return true
}

// onEvent reaps completions.
func (d *Device) onEvent() {
	for {
		rsp, ok := d.ring.TakeResponse()
		if !ok {
			if d.ring.FinalCheckForResponses() {
				continue
			}
			break
		}
		part := d.inflight[rsp.ID]
		if part == nil {
			continue
		}
		delete(d.inflight, rsp.ID)
		d.completePart(part, rsp.Status)
	}
	d.pumpPending()
}

func (d *Device) completePart(part *reqPart, status int8) {
	caller := part.parent
	if status != blkif.StatusOK {
		caller.err = fmt.Errorf("blkfront: backend reported error %d", status)
	} else if part.op == blkif.OpRead {
		// Copy data out of the (persistent) pages into the caller buffer.
		copied := 0
		for _, pp := range part.pages {
			n := len(part.readDst) - copied
			if n > mem.PageSize {
				n = mem.PageSize
			}
			copy(part.readDst[copied:copied+n], pp.page.Data[:n])
			copied += n
		}
		d.dom.CPUs.Charge(sim.Time(copied) * d.costs.PerKBCopy / 1024)
	}
	for _, pp := range part.pages {
		d.putPage(pp)
	}
	for _, ip := range part.indirect {
		d.putPage(ip)
	}
	caller.remaining--
	if caller.remaining == 0 && caller.done != nil {
		caller.done(caller.readBuf, caller.err)
	}
}
