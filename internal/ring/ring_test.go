package ring

import (
	"testing"
	"testing/quick"
)

type req struct{ id int }
type rsp struct{ id, status int }

func TestNewValidatesSize(t *testing.T) {
	for _, bad := range []int{0, -4, 3, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("size %d did not panic", bad)
				}
			}()
			New[req, rsp](bad)
		}()
	}
	if r := New[req, rsp](32); r.Size() != 32 {
		t.Fatal("size mismatch")
	}
}

func TestRequestVisibilityRequiresPublish(t *testing.T) {
	r := New[req, rsp](8)
	r.PushRequest(req{1})
	if r.RequestAvailable() {
		t.Fatal("unpublished request visible to backend")
	}
	r.PushRequestsAndCheckNotify()
	if !r.RequestAvailable() {
		t.Fatal("published request not visible")
	}
	got, ok := r.TakeRequest()
	if !ok || got.id != 1 {
		t.Fatalf("TakeRequest = %+v,%v", got, ok)
	}
}

func TestRoundTrip(t *testing.T) {
	r := New[req, rsp](8)
	for i := 0; i < 5; i++ {
		if !r.PushRequest(req{i}) {
			t.Fatalf("push %d failed", i)
		}
	}
	r.PushRequestsAndCheckNotify()
	for i := 0; i < 5; i++ {
		q, ok := r.TakeRequest()
		if !ok || q.id != i {
			t.Fatalf("req %d = %+v,%v", i, q, ok)
		}
		if !r.PushResponse(rsp{q.id, 0}) {
			t.Fatalf("response %d push failed", i)
		}
	}
	r.PushResponsesAndCheckNotify()
	for i := 0; i < 5; i++ {
		p, ok := r.TakeResponse()
		if !ok || p.id != i {
			t.Fatalf("rsp %d = %+v,%v", i, p, ok)
		}
	}
	if r.ResponseAvailable() {
		t.Fatal("phantom response")
	}
}

func TestRingFull(t *testing.T) {
	r := New[req, rsp](4)
	for i := 0; i < 4; i++ {
		if !r.PushRequest(req{i}) {
			t.Fatalf("push %d failed before full", i)
		}
	}
	if r.PushRequest(req{99}) {
		t.Fatal("push into full ring succeeded")
	}
	if !r.Full() {
		t.Fatal("Full() false on full ring")
	}
	// Serving one request does not free a slot until the frontend consumes
	// the response.
	r.PushRequestsAndCheckNotify()
	r.TakeRequest()
	r.PushResponse(rsp{0, 0})
	if r.PushRequest(req{99}) {
		t.Fatal("slot freed before response consumed")
	}
	r.PushResponsesAndCheckNotify()
	r.TakeResponse()
	if !r.PushRequest(req{99}) {
		t.Fatal("slot not freed after response consumed")
	}
}

func TestResponseNeedsServedRequest(t *testing.T) {
	r := New[req, rsp](4)
	if r.PushResponse(rsp{0, 0}) {
		t.Fatal("response without served request succeeded")
	}
	r.PushRequest(req{1})
	r.PushRequestsAndCheckNotify()
	if r.PushResponse(rsp{0, 0}) {
		t.Fatal("response before request consumed succeeded")
	}
	r.TakeRequest()
	if !r.PushResponse(rsp{1, 0}) {
		t.Fatal("legitimate response rejected")
	}
	if r.PushResponse(rsp{2, 0}) {
		t.Fatal("second response for one request succeeded")
	}
}

func TestNotifySuppression(t *testing.T) {
	r := New[req, rsp](16)
	// First publish crosses the initial req_event=1 threshold: notify.
	r.PushRequest(req{0})
	if !r.PushRequestsAndCheckNotify() {
		t.Fatal("first publish did not request notify")
	}
	// Backend has not re-armed; further publishes must be suppressed.
	r.PushRequest(req{1})
	if r.PushRequestsAndCheckNotify() {
		t.Fatal("publish without re-armed consumer requested notify")
	}
	// Backend drains and re-arms via FinalCheckForRequests.
	for {
		if _, ok := r.TakeRequest(); !ok {
			break
		}
	}
	if r.FinalCheckForRequests() {
		t.Fatal("final check saw phantom requests")
	}
	// Next publish crosses the re-armed threshold: notify again.
	r.PushRequest(req{2})
	if !r.PushRequestsAndCheckNotify() {
		t.Fatal("publish after re-arm did not request notify")
	}
}

func TestFinalCheckCatchesRace(t *testing.T) {
	r := New[req, rsp](16)
	r.PushRequest(req{0})
	r.PushRequestsAndCheckNotify()
	r.TakeRequest()
	// A new request lands before the backend re-arms: FinalCheck must
	// report it so the backend keeps processing instead of sleeping.
	r.PushRequest(req{1})
	r.PushRequestsAndCheckNotify()
	if !r.FinalCheckForRequests() {
		t.Fatal("FinalCheckForRequests missed raced-in request")
	}
}

func TestEmptyTakes(t *testing.T) {
	r := New[req, rsp](4)
	if _, ok := r.TakeRequest(); ok {
		t.Fatal("TakeRequest on empty ring succeeded")
	}
	if _, ok := r.TakeResponse(); ok {
		t.Fatal("TakeResponse on empty ring succeeded")
	}
}

func TestIndexWraparound(t *testing.T) {
	r := New[req, rsp](4)
	// Cycle far more items than the ring size to exercise wrap.
	for i := 0; i < 1000; i++ {
		if !r.PushRequest(req{i}) {
			t.Fatalf("iteration %d: push failed", i)
		}
		r.PushRequestsAndCheckNotify()
		q, ok := r.TakeRequest()
		if !ok || q.id != i {
			t.Fatalf("iteration %d: req %+v,%v", i, q, ok)
		}
		r.PushResponse(rsp{q.id, 0})
		r.PushResponsesAndCheckNotify()
		p, ok := r.TakeResponse()
		if !ok || p.id != i {
			t.Fatalf("iteration %d: rsp %+v,%v", i, p, ok)
		}
	}
}

func TestStats(t *testing.T) {
	r := New[req, rsp](8)
	r.PushRequest(req{0})
	r.PushRequestsAndCheckNotify()
	r.PushRequest(req{1})
	r.PushRequestsAndCheckNotify() // suppressed
	reqs, rsps, saved, _ := r.Stats()
	if reqs != 2 || rsps != 0 || saved != 1 {
		t.Fatalf("stats = %d reqs, %d rsps, %d saved", reqs, rsps, saved)
	}
}

// Property: for any interleaving of producer/consumer steps, every request
// is consumed exactly once and in order, slot occupancy never exceeds ring
// size, and responses arrive in request order.
func TestRingProtocolProperty(t *testing.T) {
	prop := func(steps []uint8) bool {
		r := New[req, rsp](8)
		nextPush, nextTakeReq, nextRsp, nextTakeRsp := 0, 0, 0, 0
		for _, s := range steps {
			switch s % 4 {
			case 0: // frontend push + publish
				if r.PushRequest(req{nextPush}) {
					nextPush++
				}
				r.PushRequestsAndCheckNotify()
			case 1: // backend take
				if q, ok := r.TakeRequest(); ok {
					if q.id != nextTakeReq {
						return false
					}
					nextTakeReq++
				}
			case 2: // backend respond for any consumed-but-unanswered
				if r.Inflight() > 0 && r.PushResponse(rsp{nextRsp, 0}) {
					nextRsp++
				}
				r.PushResponsesAndCheckNotify()
			case 3: // frontend consume response
				if p, ok := r.TakeResponse(); ok {
					if p.id != nextTakeRsp {
						return false
					}
					nextTakeRsp++
				}
			}
			if r.FreeRequests() < 0 || r.FreeResponses() < 0 {
				return false
			}
		}
		return nextTakeReq <= nextPush && nextRsp <= nextTakeReq && nextTakeRsp <= nextRsp
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
