// Package apps contains the application servers the evaluation runs in
// DomU (§5): an HTTP server (Apache's role), a key-value store (Redis and
// Memcached's role), a SQL database (MySQL's role, with an optional
// disk-backed mode for the storage experiments), a document store
// (MongoDB's role), and a DHCP daemon (the OpenDHCP service VM, §5.5).
// They speak real byte protocols over the simulated network stack, so the
// load they place on the driver domains matches the paper's benchmarks in
// shape: request sizes, response sizes, and CPU demand.
package apps

import (
	"bytes"
	"fmt"
	"strings"

	"kite/internal/netstack"
	"kite/internal/sim"
)

// HTTPServer is the Apache stand-in (Fig 8, Fig 16's webserver content).
type HTTPServer struct {
	stack *netstack.Stack
	files map[string][]byte

	// PerRequest is the server-side CPU charged per request (parsing,
	// routing, logging).
	PerRequest sim.Time

	requests uint64
}

// NewHTTPServer starts an HTTP server listening on port.
func NewHTTPServer(stack *netstack.Stack, port uint16) (*HTTPServer, error) {
	s := &HTTPServer{
		stack:      stack,
		files:      make(map[string][]byte),
		PerRequest: 12 * sim.Microsecond,
	}
	if err := stack.Listen(port, s.accept); err != nil {
		return nil, err
	}
	return s, nil
}

// AddFile registers content at a path.
func (s *HTTPServer) AddFile(path string, content []byte) { s.files[path] = content }

// AddRandomFile registers size bytes of deterministic content and returns
// the path.
func (s *HTTPServer) AddRandomFile(path string, size int, seed uint64) string {
	b := make([]byte, size)
	sim.NewRand(seed).Bytes(b)
	s.files[path] = b
	return path
}

// Requests returns the number of requests served.
func (s *HTTPServer) Requests() uint64 { return s.requests }

func (s *HTTPServer) accept(c *netstack.Conn) {
	var buf []byte
	c.OnData(func(data []byte) {
		buf = append(buf, data...)
		for {
			idx := bytes.Index(buf, []byte("\r\n\r\n"))
			if idx < 0 {
				return
			}
			req := string(buf[:idx])
			buf = buf[idx+4:]
			s.handle(c, req)
		}
	})
}

func (s *HTTPServer) handle(c *netstack.Conn, req string) {
	s.requests++
	s.stack.CPUs().Charge(s.PerRequest)
	line, _, _ := strings.Cut(req, "\r\n")
	parts := strings.Fields(line)
	if len(parts) < 2 || parts[0] != "GET" {
		c.Send([]byte("HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\n\r\n"))
		return
	}
	body, ok := s.files[parts[1]]
	if !ok {
		c.Send([]byte("HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n"))
		return
	}
	header := fmt.Sprintf("HTTP/1.1 200 OK\r\nContent-Length: %d\r\nServer: kite-httpd\r\n\r\n", len(body))
	resp := make([]byte, 0, len(header)+len(body))
	resp = append(resp, header...)
	resp = append(resp, body...)
	c.Send(resp)
}
