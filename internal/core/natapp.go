package core

import (
	"kite/internal/bridge"
	"kite/internal/nat"
	"kite/internal/netpkt"
	"kite/internal/sim"
	"kite/internal/xen"
)

// natRouter is the network application's NAT mode (§3.1 lists NAT next to
// bridging as the ways netbacks link to the physical NIC). Guests live on
// a private segment behind an inside bridge; the router proxy-ARPs for
// every address so guests send all off-segment traffic to it, translates
// with the nat.Translator, and forwards through the physical interface
// under the gateway address.
type natRouter struct {
	eng *sim.Engine
	dom *xen.Domain
	tr  *nat.Translator

	mac     netpkt.MAC
	gateway netpkt.IP

	inside   *bridge.Bridge
	nic      bridge.FrameDevice
	nicMAC   netpkt.MAC
	perFrame sim.Time

	// Learned mappings for delivery.
	guestMACs map[netpkt.IP]netpkt.MAC
	// insideNet is the /24 of the private segment, learned from the first
	// inside speaker; the router never proxy-ARPs for on-segment targets.
	insideNet [3]byte
	insideSet bool

	// Outside neighbour cache + ARP-pending queue.
	outARP     map[netpkt.IP]netpkt.MAC
	outPending map[netpkt.IP][][]byte
}

// newNATRouter builds the router and attaches it to the inside bridge and
// the physical NIC.
func newNATRouter(eng *sim.Engine, dom *xen.Domain, inside *bridge.Bridge,
	nic bridge.FrameDevice, nicMAC netpkt.MAC, gateway netpkt.IP, perFrame sim.Time) *natRouter {

	r := &natRouter{
		eng: eng, dom: dom,
		tr:         nat.New(eng, dom.CPUs, gateway),
		mac:        netpkt.MAC{0x00, 0x16, 0x3e, 0xaa, 0x00, 0x01},
		gateway:    gateway,
		inside:     inside,
		nic:        nic,
		nicMAC:     nicMAC,
		perFrame:   perFrame,
		guestMACs:  make(map[netpkt.IP]netpkt.MAC),
		outARP:     make(map[netpkt.IP]netpkt.MAC),
		outPending: make(map[netpkt.IP][][]byte),
	}
	inside.AddPort(r)
	nic.SetRecv(r.fromOutside)
	return r
}

// Translator exposes the NAT state (port forwards, stats).
func (r *natRouter) Translator() *nat.Translator { return r.tr }

// PortName implements bridge.Port.
func (r *natRouter) PortName() string { return "nat0" }

// Deliver implements bridge.Port: a frame from the inside segment reached
// the router (guests address it via proxy ARP, or it was flooded).
func (r *natRouter) Deliver(raw []byte) {
	f, err := netpkt.ParseFrame(raw)
	if err != nil {
		return
	}
	switch f.EtherType {
	case netpkt.EtherTypeARP:
		r.insideARP(f)
	case netpkt.EtherTypeIPv4:
		if f.Dst != r.mac && f.Dst != netpkt.Broadcast {
			return
		}
		r.learnGuest(f)
		out := r.tr.TranslateOutbound(f.Payload)
		if out == nil {
			return
		}
		r.dom.CPUs.Exec(r.perFrame, func() { r.sendOutside(out) })
	}
}

// insideARP answers every inside ARP request with the router's MAC (proxy
// ARP) so guests forward off-segment traffic here, and learns sender
// addresses for inbound delivery.
func (r *natRouter) insideARP(f *netpkt.Frame) {
	a, err := netpkt.ParseARP(f.Payload)
	if err != nil {
		return
	}
	r.guestMACs[a.SenderIP] = a.SenderMAC
	if !r.insideSet {
		r.insideNet = [3]byte{a.SenderIP[0], a.SenderIP[1], a.SenderIP[2]}
		r.insideSet = true
	}
	if a.Op != netpkt.ARPRequest || a.SenderIP == a.TargetIP {
		return
	}
	// On-segment targets answer for themselves; proxying would hijack
	// guest-to-guest traffic.
	if r.insideSet && [3]byte{a.TargetIP[0], a.TargetIP[1], a.TargetIP[2]} == r.insideNet {
		return
	}
	reply := netpkt.ARP{
		Op: netpkt.ARPReply, SenderMAC: r.mac, SenderIP: a.TargetIP,
		TargetMAC: a.SenderMAC, TargetIP: a.SenderIP,
	}
	out := netpkt.Frame{Dst: a.SenderMAC, Src: r.mac,
		EtherType: netpkt.EtherTypeARP, Payload: reply.Marshal()}
	raw := out.Marshal()
	r.dom.CPUs.Exec(r.perFrame, func() { r.inside.Input(r, raw) })
}

func (r *natRouter) learnGuest(f *netpkt.Frame) {
	if h, _, err := netpkt.ParseIPv4(f.Payload); err == nil {
		r.guestMACs[h.Src] = f.Src
	}
}

// sendOutside resolves the next hop on the physical segment and transmits.
func (r *natRouter) sendOutside(pkt []byte) {
	h, _, err := netpkt.ParseIPv4(pkt)
	if err != nil {
		return
	}
	if mac, ok := r.outARP[h.Dst]; ok {
		f := netpkt.Frame{Dst: mac, Src: r.nicMAC, EtherType: netpkt.EtherTypeIPv4, Payload: pkt}
		r.nic.Send(f.Marshal())
		return
	}
	r.outPending[h.Dst] = append(r.outPending[h.Dst], pkt)
	req := netpkt.ARP{Op: netpkt.ARPRequest, SenderMAC: r.nicMAC, SenderIP: r.gateway, TargetIP: h.Dst}
	f := netpkt.Frame{Dst: netpkt.Broadcast, Src: r.nicMAC,
		EtherType: netpkt.EtherTypeARP, Payload: req.Marshal()}
	r.nic.Send(f.Marshal())
}

// fromOutside handles frames arriving on the physical interface.
func (r *natRouter) fromOutside(raw []byte) {
	f, err := netpkt.ParseFrame(raw)
	if err != nil {
		return
	}
	switch f.EtherType {
	case netpkt.EtherTypeARP:
		r.outsideARP(f)
	case netpkt.EtherTypeIPv4:
		if f.Dst != r.nicMAC && f.Dst != netpkt.Broadcast {
			return
		}
		in, guest := r.tr.TranslateInbound(f.Payload)
		if in == nil {
			return
		}
		mac, ok := r.guestMACs[guest]
		if !ok {
			return // guest never spoke; nothing to deliver to
		}
		out := netpkt.Frame{Dst: mac, Src: r.mac, EtherType: netpkt.EtherTypeIPv4, Payload: in}
		raw := out.Marshal()
		r.dom.CPUs.Exec(r.perFrame, func() { r.inside.Input(r, raw) })
	}
}

// outsideARP answers requests for the gateway and learns outside peers.
func (r *natRouter) outsideARP(f *netpkt.Frame) {
	a, err := netpkt.ParseARP(f.Payload)
	if err != nil {
		return
	}
	r.outARP[a.SenderIP] = a.SenderMAC
	// Flush packets that waited for this resolution.
	if queued := r.outPending[a.SenderIP]; len(queued) > 0 {
		delete(r.outPending, a.SenderIP)
		for _, pkt := range queued {
			r.sendOutside(pkt)
		}
	}
	if a.Op == netpkt.ARPRequest && a.TargetIP == r.gateway {
		reply := netpkt.ARP{
			Op: netpkt.ARPReply, SenderMAC: r.nicMAC, SenderIP: r.gateway,
			TargetMAC: a.SenderMAC, TargetIP: a.SenderIP,
		}
		out := netpkt.Frame{Dst: a.SenderMAC, Src: r.nicMAC,
			EtherType: netpkt.EtherTypeARP, Payload: reply.Marshal()}
		r.nic.Send(out.Marshal())
	}
}
