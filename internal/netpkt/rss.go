package netpkt

import "encoding/binary"

// RSS computes receive-side-scaling flow hashes the way multi-queue NICs
// and xen-netback do: a Toeplitz hash over the IPv4 4-tuple (source and
// destination address and port), so every packet of a flow lands on the
// same queue and per-flow ordering survives multi-queue steering. Real
// stacks randomize the 40-byte Toeplitz key at boot; here the key is
// expanded from a 64-bit seed (splitmix64) carried in the rig config, so
// steering is deterministic and runs stay byte-identical.
type RSS struct {
	// 128-bit Toeplitz key: enough for the 12-byte (96-bit) 4-tuple input
	// plus the 32-bit sliding window.
	key [16]byte
	// tab is the byte-sliced form of the same hash: Toeplitz is linear over
	// GF(2), so the hash is the XOR of one precomputed table entry per
	// input byte. Steering runs on every forwarded frame (once per ring
	// end), so the 12 KiB table pays for itself immediately; it is built
	// once at construction and the key is kept only for documentation and
	// tests.
	tab [12][256]uint32
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewRSS expands seed into a Toeplitz key. The same seed always yields the
// same steering decisions.
func NewRSS(seed uint64) RSS {
	var r RSS
	x := seed
	for i := 0; i < len(r.key); i += 8 {
		x = splitmix64(x)
		binary.BigEndian.PutUint64(r.key[i:], x)
	}
	r.buildTables()
	return r
}

// buildTables byte-slices the key into tab (see RSS.tab). Called once at
// construction; tests that plant a key directly call it themselves.
func (r *RSS) buildTables() {
	// win[p] is the 32-bit key window starting at input bit p — what the
	// textbook construction XORs in when input bit p is set.
	hi := binary.BigEndian.Uint64(r.key[0:8])
	lo := binary.BigEndian.Uint64(r.key[8:16])
	var win [96]uint32
	for p := 0; p < 96; p++ {
		win[p] = uint32(hi >> 32)
		hi = hi<<1 | lo>>63
		lo <<= 1
	}
	for i := 0; i < 12; i++ {
		for v := 0; v < 256; v++ {
			var h uint32
			for k := 0; k < 8; k++ {
				if v&(1<<uint(7-k)) != 0 {
					h ^= win[i*8+k]
				}
			}
			r.tab[i][v] = h
		}
	}
}

// toeplitz evaluates the Toeplitz hash via the byte-sliced tables: the
// textbook construction XORs in the 32-bit key window at every set input
// bit, and linearity folds each byte's eight windows into one table entry.
//
//kite:hotpath
func (r *RSS) toeplitz(in *[12]byte) uint32 {
	var h uint32
	for i, b := range in {
		h ^= r.tab[i][b]
	}
	return h
}

// Hash12 evaluates the Toeplitz hash over an arbitrary 12-byte input. The
// sharded flow tables (bridge FDB, NAT flows) key on this so their shard
// and slot spreading reuses the same deterministic hash family the RSS
// steering already trusts — a MAC or flow key is padded into the 12-byte
// window by the caller.
//
//kite:hotpath
func (r *RSS) Hash12(in *[12]byte) uint32 { return r.toeplitz(in) }

// FrameHash computes the flow hash of a raw Ethernet frame. For IPv4
// TCP/UDP first fragments it hashes the full 4-tuple; for other IPv4
// packets (ICMP, later fragments — whose L4 header is absent or ambiguous)
// it hashes the 2-tuple with zero ports. ok is false for anything that is
// not a well-formed IPv4 frame; callers steer those to queue 0, like the
// non-IP default queue in real RSS.
func (r *RSS) FrameHash(frame []byte) (hash uint32, ok bool) {
	if len(frame) < EthHeaderLen+IPHeaderLen {
		return 0, false
	}
	if binary.BigEndian.Uint16(frame[12:14]) != EtherTypeIPv4 {
		return 0, false
	}
	ip := frame[EthHeaderLen:]
	ihl := int(ip[0]&0x0f) * 4
	if ip[0]>>4 != 4 || ihl < IPHeaderLen || len(ip) < ihl {
		return 0, false
	}
	var in [12]byte
	copy(in[0:4], ip[12:16]) // src IP
	copy(in[4:8], ip[16:20]) // dst IP
	proto := ip[9]
	fragField := binary.BigEndian.Uint16(ip[6:8])
	firstFrag := fragField&0x1fff == 0 // ports only present in fragment 0
	if firstFrag && (proto == ProtoTCP || proto == ProtoUDP) && len(ip) >= ihl+4 {
		copy(in[8:12], ip[ihl:ihl+4]) // src port, dst port
	}
	return r.toeplitz(&in), true
}

// Queue maps a frame onto one of n queues: its flow hash modulo n, with
// queue 0 for non-IPv4 frames (ARP, control traffic).
func (r *RSS) Queue(frame []byte, n int) int {
	if n <= 1 {
		return 0
	}
	h, ok := r.FrameHash(frame)
	if !ok {
		return 0
	}
	return int(h % uint32(n))
}
