// Command kitelint runs the repository's invariant analyzers (hotpath,
// poolref, simdet, xskeys, evblock) over the whole module and prints any
// findings in go-vet style. It exits non-zero when a finding exists, so
// `make lint` and CI fail the build on a violated invariant.
//
// Usage:
//
//	kitelint [dir]
//
// dir defaults to the current directory; the containing module is
// analyzed in full.
package main

import (
	"flag"
	"fmt"
	"os"

	"kite/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-8s %s\n", a.Name, a.Doc)
		}
		return
	}

	dir := "."
	if flag.NArg() > 0 {
		dir = flag.Arg(0)
	}

	mod, err := lint.LoadModule(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kitelint:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(mod, lint.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "kitelint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(lint.Format(mod, d))
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "kitelint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
