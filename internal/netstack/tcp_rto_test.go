package netstack

import (
	"testing"

	"kite/internal/framepool"
	"kite/internal/netpkt"
	"kite/internal/nic"
	"kite/internal/sim"
)

// rtoHosts builds a host pair with the given link characteristics.
func rtoHosts(t *testing.T, cfg nic.LinkConfig) (*sim.Engine, *Host, *Host) {
	t.Helper()
	eng := sim.NewEngine()
	a := NewHost(eng, HostConfig{Name: "a", CPUs: 2, IP: netpkt.IPv4(10, 0, 0, 1),
		MAC: netpkt.MAC{2, 0, 0, 0, 0, 1}, BDF: "03:00.0", Costs: LinuxGuestCosts(), Seed: 1})
	b := NewHost(eng, HostConfig{Name: "b", CPUs: 2, IP: netpkt.IPv4(10, 0, 0, 2),
		MAC: netpkt.MAC{2, 0, 0, 0, 0, 2}, BDF: "04:00.0", Costs: LinuxGuestCosts(), Seed: 2})
	nic.Connect(a.NIC, b.NIC, cfg)
	return eng, a, b
}

func TestRTTSamplingConvergesRTO(t *testing.T) {
	eng, a, b := rtoHosts(t, nic.DefaultLink())
	b.Stack.Listen(80, func(c *Conn) {
		c.OnData(func(d []byte) { c.Send(d) })
	})
	var conn *Conn
	n := 0
	a.Stack.Dial(b.Stack.IP(), 80, func(c *Conn, err error) {
		if err != nil {
			t.Fatal(err)
		}
		conn = c
		c.OnData(func([]byte) {
			n++
			if n < 20 {
				c.Send([]byte("x"))
			}
		})
		c.Send([]byte("x"))
	})
	if !eng.RunCapped(1_000_000) {
		t.Fatal("livelock")
	}
	if conn.srtt == 0 {
		t.Fatal("no RTT samples taken")
	}
	// Sub-millisecond link: smoothed RTT must be tiny and the RTO clamped
	// to the floor, far below the conservative pre-sample value.
	if conn.srtt > sim.Millisecond {
		t.Fatalf("srtt = %v, implausible for a direct link", conn.srtt)
	}
	if conn.rto() != rtoMin {
		t.Fatalf("converged rto = %v, want clamp at %v", conn.rto(), rtoMin)
	}
}

func TestInitialRTOConservative(t *testing.T) {
	eng, a, b := rtoHosts(t, nic.DefaultLink())
	b.Stack.Listen(80, func(*Conn) {})
	c := a.Stack.Dial(b.Stack.IP(), 80, func(*Conn, error) {})
	eng.RunFor(sim.Millisecond)
	if got := c.rto(); got <= rtoMin*2 {
		t.Fatalf("pre-sample rto = %v, want conservative (>> %v)", got, rtoMin)
	}
}

func TestRTOBackoffAndReset(t *testing.T) {
	// Cut the wire after the handshake so retransmissions time out
	// repeatedly: the timeout must grow (backoff) and stay clamped.
	eng, a, b := rtoHosts(t, nic.DefaultLink())
	b.Stack.Listen(80, func(c *Conn) {})
	var conn *Conn
	a.Stack.Dial(b.Stack.IP(), 80, func(c *Conn, err error) {
		if err != nil {
			return
		}
		conn = c
	})
	eng.RunFor(10 * sim.Millisecond)
	if conn == nil {
		t.Fatal("handshake failed")
	}
	// Black-hole everything from now on.
	b.NIC.SetRecv(func(f *framepool.Buf) { f.Release() })
	conn.Send([]byte("into the void"))
	eng.RunFor(300 * sim.Millisecond)
	if conn.rtoBackoff < 2 {
		t.Fatalf("backoff = %d after repeated timeouts, want growth", conn.rtoBackoff)
	}
	if conn.rto() > rtoMax {
		t.Fatalf("rto = %v exceeds clamp %v", conn.rto(), rtoMax)
	}
	if conn.Retransmits() == 0 {
		t.Fatal("no retransmissions against a black hole")
	}
}

func TestNoSpuriousRetransmitsUnderLoad(t *testing.T) {
	// Dozens of concurrent request/response conns on a healthy link must
	// produce zero retransmissions (the Fig 10 regression this guards).
	eng, a, b := rtoHosts(t, nic.DefaultLink())
	b.Stack.Listen(80, func(c *Conn) {
		c.OnData(func(d []byte) { c.Send(make([]byte, 8000)) })
	})
	done := 0
	for i := 0; i < 30; i++ {
		a.Stack.Dial(b.Stack.IP(), 80, func(c *Conn, err error) {
			if err != nil {
				t.Fatal(err)
			}
			got := 0
			reqs := 0
			c.OnData(func(d []byte) {
				got += len(d)
				if got >= 8000 {
					got = 0
					reqs++
					if reqs == 10 {
						done++
						return
					}
					c.Send([]byte("q"))
				}
			})
			c.Send([]byte("q"))
		})
	}
	if !eng.RunCapped(5_000_000) {
		t.Fatal("livelock")
	}
	if done != 30 {
		t.Fatalf("%d of 30 conns completed", done)
	}
	fa, ra := a.Stack.RetransBreakdown()
	fb, rb := b.Stack.RetransBreakdown()
	if fa+ra+fb+rb != 0 {
		t.Fatalf("spurious retransmissions on a clean link: a=%d/%d b=%d/%d", fa, ra, fb, rb)
	}
}

func TestSingleDelayedAckTimer(t *testing.T) {
	eng, a, b := rtoHosts(t, nic.DefaultLink())
	var server *Conn
	b.Stack.Listen(80, func(c *Conn) { server = c })
	var client *Conn
	a.Stack.Dial(b.Stack.IP(), 80, func(c *Conn, err error) { client = c })
	eng.RunFor(5 * sim.Millisecond)
	if server == nil || client == nil {
		t.Fatal("handshake failed")
	}
	// Send several lone segments spaced under the delack timeout: the ack
	// timer must be armed at most once at a time.
	for i := 0; i < 3; i++ {
		client.Send([]byte("z"))
		eng.RunFor(100 * sim.Microsecond)
		if server.ackTimerOn && i > 0 {
			// timer on is fine; what matters is pending count sanity
			if server.ackPending > 2 {
				t.Fatalf("ackPending = %d, acks not being sent", server.ackPending)
			}
		}
	}
	eng.RunFor(3 * delayedAckTimeout)
	if server.ackPending != 0 {
		t.Fatalf("ackPending = %d after timeout, want 0", server.ackPending)
	}
}
