// Package security implements the paper's security analyses: the CVE
// applicability model (Table 3, §5.1.1, Fig 1a) and the ROP gadget scan
// (Figs 1b and 5). A CVE applies to a profile only if the profile derives
// from the vulnerable code base AND still ships every syscall and
// component the exploit needs; Kite domains dodge whole classes either
// way — they run NetBSD-derived code and discard unused syscalls at link
// time.
package security

import "kite/internal/guestos"

// CVE is one vulnerability record.
type CVE struct {
	ID           string
	Family       guestos.Family // vulnerable code base
	Syscalls     []string       // syscalls the exploit requires (any listed)
	Components   []string       // userspace components required (any listed)
	NeedsShell   bool           // requires running a shell
	NeedsCrafted bool           // requires running a crafted application
	Description  string
}

// Table3CVEs are the 11 CVEs of Table 3, prevented in Kite by discarding
// the syscalls their exploits require.
func Table3CVEs() []CVE {
	l := guestos.FamilyLinux
	return []CVE{
		{ID: "CVE-2021-35039", Family: l, Syscalls: []string{"init_module"},
			Description: "loading unsigned kernel modules via init_module"},
		{ID: "CVE-2019-3901", Family: l, Syscalls: []string{"execve"},
			Description: "race lets local attackers leak data from setuid programs"},
		{ID: "CVE-2018-18281", Family: l, Syscalls: []string{"ftruncate", "mremap"},
			Description: "access to an already freed and reused physical page"},
		{ID: "CVE-2018-1068", Family: l, Syscalls: []string{"compat_sys_setsockopt"},
			Description: "privileged user arbitrarily writes kernel memory range"},
		{ID: "CVE-2017-18344", Family: l, Syscalls: []string{"timer_create"},
			Description: "userspace applications read arbitrary kernel memory"},
		{ID: "CVE-2017-17053", Family: l, Syscalls: []string{"modify_ldt", "clone"},
			Description: "use-after-free via a crafted program"},
		{ID: "CVE-2016-6198", Family: l, Syscalls: []string{"rename"},
			Description: "local users cause denial of service"},
		{ID: "CVE-2016-6197", Family: l, Syscalls: []string{"rename", "unlink"},
			Description: "local users cause denial of service"},
		{ID: "CVE-2014-3180", Family: l, Syscalls: []string{"compat_sys_nanosleep"},
			Description: "uninitialized data allows out-of-bounds read"},
		{ID: "CVE-2009-0028", Family: l, Syscalls: []string{"clone"},
			Description: "unprivileged child sends arbitrary signals to parent"},
		{ID: "CVE-2009-0835", Family: l, Syscalls: []string{"chmod", "stat"},
			Description: "local users bypass access restrictions via crafted syscalls"},
	}
}

// ToolstackCVEs are the xen-utils/libxl/python vulnerabilities §1 and
// §5.1.1 cite, avoided by not shipping those components at all.
func ToolstackCVEs() []CVE {
	l := guestos.FamilyLinux
	return []CVE{
		{ID: "CVE-2013-2072", Family: l, Components: []string{"python3", "xen-utils"},
			Description: "buffer overflow in Python bindings for xc allows privilege escalation"},
		{ID: "CVE-2016-4963", Family: l, Components: []string{"libxl"},
			Description: "libxl device-handling race allows unauthorized backend access"},
		{ID: "CVE-2015-8550", Family: l, Components: []string{"hotplug-scripts"},
			Description: "double-fetch in PV backends via compiler optimization"},
	}
}

// CraftedAppCVECount and ShellCVECount are the paper's counts of reported
// Linux CVEs that need a crafted application (172) or a shell (92) —
// attacks unavailable on a single-purpose unikernel with no way to run
// either (§5.1.1).
const (
	CraftedAppCVECount = 172
	ShellCVECount      = 92
)

// Applies reports whether a CVE is exploitable on the given profile.
func Applies(cve CVE, p *guestos.Profile) bool {
	if cve.Family != p.Family {
		return false
	}
	for _, sc := range cve.Syscalls {
		if !p.HasSyscall(sc) {
			return false
		}
	}
	for _, comp := range cve.Components {
		if !p.HasComponent(comp) {
			return false
		}
	}
	if cve.NeedsShell && !p.HasComponent("bash") {
		return false
	}
	if cve.NeedsCrafted && p.Family == guestos.FamilyNetBSD {
		return false // no way to load foreign applications into a unikernel
	}
	return true
}

// Mitigated is the complement of Applies, in Table 3's terms.
func Mitigated(cve CVE, p *guestos.Profile) bool { return !Applies(cve, p) }

// DriverCVEYear is one year of Fig 1a's driver-CVE statistics
// (cve.mitre.org counts for Linux and Windows drivers).
type DriverCVEYear struct {
	Year    int
	Linux   int
	Windows int
}

// DriverCVEsByYear returns the Fig 1a series: driver CVEs keep surging
// across both major OS families, motivating isolation of drivers in
// separate VMs.
func DriverCVEsByYear() []DriverCVEYear {
	return []DriverCVEYear{
		{2016, 29, 22},
		{2017, 43, 36},
		{2018, 54, 48},
		{2019, 68, 61},
		{2020, 87, 79},
		{2021, 118, 96},
	}
}
