package blkback

import (
	"fmt"

	"kite/internal/sim"
	"kite/internal/xen"
)

// A ServiceLane is the fleet-mode execution unit of the storage backend:
// one request thread on one pinned vCPU serving the single-queue vbds of
// many tenant guests. The per-instance request threads that are right for
// a handful of guests do not survive hundreds — the task count explodes
// and a guest with a permanently full ring keeps its thread runnable
// forever, starving quieter tenants that share the vCPU. The lane
// replaces them with one deficit-round-robin worker: each active member
// earns a request quantum per round and its ring is drained only up to
// the accumulated deficit, so a tenant issuing 10x the I/O gets exactly
// its share per round and no more. Members with leftover backlog stay in
// the round list; drained members leave and forfeit their deficit.
//
// Doorbells batch through one xen.Demux group per lane: every member
// port joins it and one scan per doorbell quantum serves the whole
// pending bitmap.
type ServiceLane struct {
	id     int
	eng    *sim.Engine
	cpu    *sim.CPU
	sq     int // the lane vCPU's NVMe submission queue
	demux  *xen.Demux
	worker *sim.Task

	// quantum is the DRR request allotment added to each active member
	// per round — several ring bursts, so a round moves useful work per
	// tenant; fairness does not depend on the exact value.
	quantum int

	// active is the DRR round list in activation order; compacted in
	// place each round, so it grows to the member high-water mark and
	// then never allocates.
	active []*ioQueue

	rounds uint64
}

// laneReqQuantum is the default per-tenant request allotment per round.
const laneReqQuantum = 32

// NewServiceLane creates fleet lane id for dom: worker pinned to the
// vCPU with index cpuIdx (which is also the lane's NVMe submission
// queue), doorbells demuxed at the costs' wake latency.
func NewServiceLane(id int, dom *xen.Domain, eng *sim.Engine, cpuIdx int, costs Costs) *ServiceLane {
	// Block lane workers currently share the driver shard (request threads
	// drain same-engine rings), so this declaration is a no-op today; if a
	// layout ever pins lanes onto their own cluster shards, the worker wake
	// latency is the conservative cross-shard edge bound, mirroring
	// netback's queue<->bridge declaration.
	sim.DeclareLink(dom.CPUs.CPU(cpuIdx%dom.CPUs.Len()).Engine(), eng, costs.WakeLatency)
	l := &ServiceLane{
		id: id, eng: eng, cpu: dom.CPUs.CPU(cpuIdx), sq: cpuIdx,
		quantum: laneReqQuantum,
	}
	l.demux = dom.NewDemux(l.cpu, costs.WakeLatency)
	l.worker = sim.NewTask(eng, l.cpu, fmt.Sprintf("blkback/lane%d", id),
		costs.WakeLatency, l.round)
	return l
}

// ID returns the lane index.
func (l *ServiceLane) ID() int { return l.id }

// Members returns how many tenant queues have joined the lane's demux.
func (l *ServiceLane) Members() int { return l.demux.Members() }

// Rounds returns how many DRR rounds the worker has executed.
func (l *ServiceLane) Rounds() uint64 { return l.rounds }

// DemuxStats reports the lane's doorbell batching: scans executed and
// member doorbells absorbed into them.
func (l *ServiceLane) DemuxStats() (scans, marks uint64) { return l.demux.Stats() }

// detach removes a departing tenant's queue from the lane: its doorbell
// leaves the demux group and any spot in the current DRR round is
// forfeited. Runs during Instance.Shutdown, before the queue's port
// closes — a churning fleet must not pin one dead member slot per
// departure.
func (l *ServiceLane) detach(q *ioQueue) {
	l.demux.Leave(q.port)
	if q.laneActive {
		for i, m := range l.active {
			if m == q {
				l.active = append(l.active[:i], l.active[i+1:]...)
				break
			}
		}
		q.laneActive = false
	}
	q.deficit = 0
}

// activate puts q into the DRR round list (if not already there) and
// wakes the worker.
//
//kite:hotpath
func (l *ServiceLane) activate(q *ioQueue) {
	if !q.laneActive {
		q.laneActive = true
		l.active = append(l.active, q) //kite:alloc-ok round list grows to the member high-water mark
	}
	l.worker.Wake()
}

// round is the worker body: one deficit-round-robin pass over the active
// members, visiting each in activation order and compacting in place. A
// member stays in the list only if budget — not work — ran out; another
// round is scheduled while anyone still has backlog.
func (l *ServiceLane) round() {
	n := len(l.active)
	if n == 0 {
		return
	}
	l.rounds++
	keep := l.active[:0]
	for i := 0; i < n; i++ {
		q := l.active[i]
		q.deficit += l.quantum
		used, more := q.drainBudget(q.deficit)
		q.deficit -= used
		if more {
			keep = append(keep, q) // in place: keep's write index never passes i
		} else {
			// Drained: leave the round and forfeit the unused deficit, so
			// idle tenants cannot bank credit against future backlogs.
			q.laneActive = false
			q.deficit = 0
		}
	}
	for i := len(keep); i < n; i++ {
		l.active[i] = nil // drop dangling member references past the compacted tail
	}
	l.active = keep
	if len(l.active) > 0 {
		l.worker.Wake()
	}
}
