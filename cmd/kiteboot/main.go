// Command kiteboot runs the artifact's experiment E1 (§A.4.2): boot an
// Ubuntu-based and a Kite network driver domain and report the time from
// `xl create` to service readiness, phase by phase. The paper's claim C1
// is a >= 10x speedup (75 s vs 7 s, Fig 4c).
package main

import (
	"flag"
	"fmt"

	"kite/internal/core"
	"kite/internal/guestos"
	"kite/internal/sim"
)

func main() {
	storage := flag.Bool("storage", false, "boot storage domains instead of network domains")
	flag.Parse()

	boot := func(kind core.DriverKind) sim.Time {
		tb := core.NewTestbed(0xE1)
		var profile *guestos.Profile
		readyAt := sim.Time(-1)
		if *storage {
			sd, err := tb.System.CreateStorageDomain(core.StorageDomainConfig{
				Kind: kind, Device: tb.NVMe, Boot: true,
			})
			if err != nil {
				panic(err)
			}
			profile = sd.Profile
			tb.System.RunReady(sd.Ready, 1_000_000)
			readyAt = tb.System.Eng.Now()
		} else {
			nd, err := tb.System.CreateNetworkDomain(core.NetworkDomainConfig{
				Kind: kind, NIC: tb.ServerNIC, Boot: true,
			})
			if err != nil {
				panic(err)
			}
			profile = nd.Profile
			tb.System.RunReady(nd.Ready, 1_000_000)
			readyAt = tb.System.Eng.Now()
		}
		fmt.Printf("%-9s %s\n", kind, profile.Name)
		var at sim.Time
		for _, ph := range profile.BootPhases {
			at += ph.Duration
			fmt.Printf("  %8.1fs  %s\n", at.Seconds(), ph.Name)
		}
		fmt.Printf("  => ready at %.1f s\n\n", readyAt.Seconds())
		return readyAt
	}

	linux := boot(core.KindLinux)
	kite := boot(core.KindKite)
	fmt.Printf("speedup: %.1fx (paper claim C1: >= 10x)\n", linux.Seconds()/kite.Seconds())
}
