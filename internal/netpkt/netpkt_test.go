package netpkt

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestMACString(t *testing.T) {
	m := MAC{0x00, 0x16, 0x3e, 0x01, 0x02, 0x03}
	if m.String() != "00:16:3e:01:02:03" {
		t.Fatalf("MAC string = %s", m)
	}
}

func TestXenMACUnique(t *testing.T) {
	a := XenMAC(1, 0)
	b := XenMAC(1, 1)
	c := XenMAC(2, 0)
	if a == b || a == c || b == c {
		t.Fatal("XenMAC collisions")
	}
	if a[0] != 0x00 || a[1] != 0x16 || a[2] != 0x3e {
		t.Fatal("XenMAC not in Xen OUI")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	f := &Frame{Dst: Broadcast, Src: XenMAC(1, 0), EtherType: EtherTypeIPv4, Payload: []byte("data")}
	b := f.Marshal()
	g, err := ParseFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if g.Dst != f.Dst || g.Src != f.Src || g.EtherType != f.EtherType || !bytes.Equal(g.Payload, f.Payload) {
		t.Fatalf("round trip mismatch: %+v", g)
	}
}

func TestFrameTooShort(t *testing.T) {
	if _, err := ParseFrame(make([]byte, 5)); err == nil {
		t.Fatal("short frame parsed")
	}
}

func TestARPRoundTrip(t *testing.T) {
	a := &ARP{Op: ARPRequest, SenderMAC: XenMAC(1, 0), SenderIP: IPv4(10, 0, 0, 1), TargetIP: IPv4(10, 0, 0, 2)}
	g, err := ParseARP(a.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if g.Op != ARPRequest || g.SenderIP != a.SenderIP || g.TargetIP != a.TargetIP || g.SenderMAC != a.SenderMAC {
		t.Fatalf("arp mismatch: %+v", g)
	}
}

func TestIPv4RoundTripAndChecksum(t *testing.T) {
	h := &IPv4Header{ID: 7, TTL: 64, Proto: ProtoUDP, Src: IPv4(10, 0, 0, 1), Dst: IPv4(10, 0, 0, 2)}
	pkt := h.Marshal([]byte("payload"))
	g, payload, err := ParseIPv4(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if g.Src != h.Src || g.Dst != h.Dst || g.Proto != ProtoUDP || string(payload) != "payload" {
		t.Fatalf("ipv4 mismatch: %+v %q", g, payload)
	}
	// Corrupt a header byte: checksum must catch it.
	pkt[9] ^= 0xff
	if _, _, err := ParseIPv4(pkt); err == nil {
		t.Fatal("corrupted ipv4 header parsed")
	}
}

func TestIPv4TrailingBytesIgnored(t *testing.T) {
	// Ethernet minimum padding adds trailing bytes beyond TotalLen.
	h := &IPv4Header{TTL: 64, Proto: ProtoUDP, Src: IPv4(1, 1, 1, 1), Dst: IPv4(2, 2, 2, 2)}
	pkt := append(h.Marshal([]byte("abc")), 0, 0, 0, 0)
	_, payload, err := ParseIPv4(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != "abc" {
		t.Fatalf("payload with padding = %q", payload)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	u := &UDPHeader{SrcPort: 1234, DstPort: 53}
	g, payload, err := ParseUDP(u.Marshal([]byte("q")))
	if err != nil {
		t.Fatal(err)
	}
	if g.SrcPort != 1234 || g.DstPort != 53 || string(payload) != "q" {
		t.Fatalf("udp mismatch: %+v %q", g, payload)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	h := &TCPHeader{SrcPort: 80, DstPort: 5555, Seq: 100, Ack: 200, Flags: TCPAck | TCPPsh, Window: 65535}
	g, payload, err := ParseTCP(h.Marshal([]byte("body")))
	if err != nil {
		t.Fatal(err)
	}
	if *g != *h || string(payload) != "body" {
		t.Fatalf("tcp mismatch: %+v", g)
	}
}

func TestICMPEchoRoundTripAndChecksum(t *testing.T) {
	e := &ICMPEcho{Type: ICMPEchoRequest, ID: 9, Seq: 3}
	b := e.Marshal([]byte("ping-data"))
	g, payload, err := ParseICMPEcho(b)
	if err != nil {
		t.Fatal(err)
	}
	if g.Type != ICMPEchoRequest || g.ID != 9 || g.Seq != 3 || string(payload) != "ping-data" {
		t.Fatalf("icmp mismatch: %+v %q", g, payload)
	}
	b[8] ^= 0x55
	if _, _, err := ParseICMPEcho(b); err == nil {
		t.Fatal("corrupted icmp parsed")
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example-style check: checksum of data plus its checksum is 0.
	data := []byte{0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11,
		0x00, 0x00, 0xc0, 0xa8, 0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7}
	c := Checksum(data)
	data[10] = byte(c >> 8)
	data[11] = byte(c)
	if Checksum(data) != 0 {
		t.Fatal("checksum does not self-verify")
	}
}

func TestFragmentSmallPayloadUnfragmented(t *testing.T) {
	h := IPv4Header{TTL: 64, Proto: ProtoUDP, Src: IPv4(1, 0, 0, 1), Dst: IPv4(1, 0, 0, 2)}
	pkts := FragmentIPv4(h, make([]byte, 100), MTU)
	if len(pkts) != 1 {
		t.Fatalf("small payload produced %d fragments", len(pkts))
	}
}

func TestFragmentReassembleRoundTrip(t *testing.T) {
	payload := make([]byte, 8192)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	h := IPv4Header{ID: 42, TTL: 64, Proto: ProtoUDP, Src: IPv4(1, 0, 0, 1), Dst: IPv4(1, 0, 0, 2)}
	pkts := FragmentIPv4(h, payload, MTU)
	if len(pkts) < 6 {
		t.Fatalf("8KB over 1500 MTU produced only %d fragments", len(pkts))
	}
	r := NewReassembler()
	var got []byte
	for i, pkt := range pkts {
		hh, pl, err := ParseIPv4(pkt)
		if err != nil {
			t.Fatal(err)
		}
		full, done := r.Push(hh, pl)
		if done && i != len(pkts)-1 {
			t.Fatal("reassembly completed early")
		}
		if done {
			got = full
		}
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("reassembled payload mismatch")
	}
	if r.PendingCount() != 0 {
		t.Fatal("reassembler leaked state")
	}
}

func TestReassembleOutOfOrder(t *testing.T) {
	payload := make([]byte, 5000)
	for i := range payload {
		payload[i] = byte(i)
	}
	h := IPv4Header{ID: 9, TTL: 64, Proto: ProtoUDP, Src: IPv4(1, 0, 0, 1), Dst: IPv4(1, 0, 0, 2)}
	pkts := FragmentIPv4(h, payload, MTU)
	r := NewReassembler()
	var got []byte
	// Deliver in reverse.
	for i := len(pkts) - 1; i >= 0; i-- {
		hh, pl, _ := ParseIPv4(pkts[i])
		if full, done := r.Push(hh, pl); done {
			got = full
		}
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("out-of-order reassembly failed")
	}
}

func TestReassembleMissingFragmentIncomplete(t *testing.T) {
	payload := make([]byte, 5000)
	h := IPv4Header{ID: 9, TTL: 64, Proto: ProtoUDP, Src: IPv4(1, 0, 0, 1), Dst: IPv4(1, 0, 0, 2)}
	pkts := FragmentIPv4(h, payload, MTU)
	r := NewReassembler()
	for i, pkt := range pkts {
		if i == 1 {
			continue // drop one fragment
		}
		hh, pl, _ := ParseIPv4(pkt)
		if _, done := r.Push(hh, pl); done {
			t.Fatal("reassembly completed despite missing fragment")
		}
	}
	if r.PendingCount() != 1 {
		t.Fatal("incomplete datagram not retained")
	}
}

func TestInterleavedDatagramsReassemble(t *testing.T) {
	h1 := IPv4Header{ID: 1, TTL: 64, Proto: ProtoUDP, Src: IPv4(1, 0, 0, 1), Dst: IPv4(1, 0, 0, 2)}
	h2 := IPv4Header{ID: 2, TTL: 64, Proto: ProtoUDP, Src: IPv4(1, 0, 0, 1), Dst: IPv4(1, 0, 0, 2)}
	p1 := bytes.Repeat([]byte{0xAA}, 4000)
	p2 := bytes.Repeat([]byte{0xBB}, 4000)
	f1 := FragmentIPv4(h1, p1, MTU)
	f2 := FragmentIPv4(h2, p2, MTU)
	r := NewReassembler()
	completed := 0
	for i := 0; i < len(f1) || i < len(f2); i++ {
		for _, set := range [][][]byte{f1, f2} {
			if i < len(set) {
				hh, pl, _ := ParseIPv4(set[i])
				if full, done := r.Push(hh, pl); done {
					completed++
					want := byte(0xAA)
					if hh.ID == 2 {
						want = 0xBB
					}
					if full[0] != want || len(full) != 4000 {
						t.Fatal("interleaved reassembly mixed datagrams")
					}
				}
			}
		}
	}
	if completed != 2 {
		t.Fatalf("completed %d datagrams, want 2", completed)
	}
}

// Property: fragmentation then reassembly is the identity for any payload
// size up to 64 KB - headers.
func TestFragmentReassembleProperty(t *testing.T) {
	prop := func(seed uint32, sizeRaw uint16) bool {
		size := int(sizeRaw)%40000 + 1
		payload := make([]byte, size)
		x := seed
		for i := range payload {
			x = x*1664525 + 1013904223
			payload[i] = byte(x >> 24)
		}
		h := IPv4Header{ID: uint16(seed), TTL: 64, Proto: ProtoUDP,
			Src: IPv4(10, 0, 0, 1), Dst: IPv4(10, 0, 0, 2)}
		r := NewReassembler()
		var got []byte
		for _, pkt := range FragmentIPv4(h, payload, MTU) {
			hh, pl, err := ParseIPv4(pkt)
			if err != nil {
				return false
			}
			if full, done := r.Push(hh, pl); done {
				got = full
			}
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
