// Command kitelint runs the repository's invariant analyzers (hotpath,
// poolref, simdet, xskeys, evblock, shardsafe, relpure, ringlink,
// atomicscope) over the whole module and prints any findings in go-vet
// style. It exits non-zero when a finding exists, so `make lint` and CI
// fail the build on a violated invariant.
//
// Usage:
//
//	kitelint [-v] [-list] [dir]
//
// dir defaults to the current directory; the containing module is
// analyzed in full. The module is loaded and typechecked exactly once and
// every analyzer shares that one types.Info view; -v prints the load time
// and each analyzer's wall-clock to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"kite/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	verbose := flag.Bool("v", false, "print load and per-analyzer timing to stderr")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	dir := "."
	if flag.NArg() > 0 {
		dir = flag.Arg(0)
	}

	loadStart := time.Now()
	mod, err := lint.LoadModule(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kitelint:", err)
		os.Exit(2)
	}
	loadTime := time.Since(loadStart)

	diags, timings, err := lint.RunTimed(mod, lint.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "kitelint:", err)
		os.Exit(2)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "kitelint: load+typecheck %d pkgs in %v\n", len(mod.Pkgs), loadTime.Round(time.Millisecond))
		for _, tm := range timings {
			fmt.Fprintf(os.Stderr, "kitelint: %-12s %v\n", tm.Name, tm.Elapsed.Round(time.Millisecond))
		}
	}
	for _, d := range diags {
		fmt.Println(lint.Format(mod, d))
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "kitelint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
