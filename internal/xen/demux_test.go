package xen

import (
	"testing"

	"kite/internal/sim"
)

// demuxRig wires one backend-side demux group whose members are ports bound
// to per-tenant frontend domains, mirroring how a fleet-mode netback joins
// one doorbell channel per tenant.
type demuxRig struct {
	eng   *sim.Engine
	hv    *Hypervisor
	dom0  *Domain
	g     *Demux
	next  int
	order []int // tenant id per member, join order (the reference member list)
	lport map[int]Port
	rport map[int]Port
	fdom  map[int]*Domain
	log   []int // tenant ids in delivery order
}

func newDemuxRig(t *testing.T, quantum sim.Time) *demuxRig {
	t.Helper()
	eng, hv, dom0 := newHV(t)
	r := &demuxRig{
		eng: eng, hv: hv, dom0: dom0,
		g:     dom0.NewDemux(dom0.CPUs.CPU(0), quantum),
		lport: make(map[int]Port), rport: make(map[int]Port),
		fdom: make(map[int]*Domain),
	}
	return r
}

// join adds a fresh tenant channel to the group and returns its id.
func (r *demuxRig) join(t *testing.T) int {
	t.Helper()
	id := r.next
	r.next++
	du := r.hv.CreateDomain(DomainConfig{Name: "t", VCPUs: 1, MemBytes: 1 << 20})
	unbound := du.AllocUnbound(r.dom0.ID)
	lport, err := r.dom0.BindInterdomain(du.ID, unbound)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.dom0.SetHandler(lport, func() { r.log = append(r.log, id) }); err != nil {
		t.Fatal(err)
	}
	if err := r.g.Join(lport); err != nil {
		t.Fatal(err)
	}
	r.fdom[id] = du
	r.lport[id] = lport
	r.rport[id] = unbound
	r.order = append(r.order, id)
	return id
}

// leave removes tenant id from the group and the reference list.
func (r *demuxRig) leave(id int) {
	r.g.Leave(r.lport[id])
	for i, o := range r.order {
		if o == id {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
}

// post rings tenant id's doorbell (frontend side).
func (r *demuxRig) post(id int) {
	r.fdom[id].Notify(r.rport[id])
}

// TestDemuxChurnAgainstReference drives randomized join/leave/post churn
// through a demux group and checks, wave by wave, that the group delivers
// exactly the posted members in join order — the behaviour of a naive
// "ordered list plus pending set" model — regardless of how the two-level
// bitmap grows, shrinks, and compacts underneath.
func TestDemuxChurnAgainstReference(t *testing.T) {
	r := newDemuxRig(t, 0)
	rng := uint64(0xDE11_4B17)
	rand := func(n int) int { // deterministic xorshift; no global rand state
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(n))
	}
	for i := 0; i < 8; i++ {
		r.join(t)
	}
	for wave := 0; wave < 300; wave++ {
		switch rand(4) {
		case 0:
			r.join(t)
		case 1:
			if len(r.order) > 1 {
				r.leave(r.order[rand(len(r.order))])
			}
		}
		// Post a random subset (possibly with duplicate doorbells, which
		// must coalesce into one delivery).
		posted := make(map[int]bool)
		for n := rand(len(r.order) + 1); n > 0; n-- {
			id := r.order[rand(len(r.order))]
			r.post(id)
			if rand(3) == 0 {
				r.post(id) // duplicate doorbell
			}
			posted[id] = true
		}
		r.log = r.log[:0]
		r.eng.Run()
		// Reference: posted members, join order, exactly once.
		var want []int
		for _, id := range r.order {
			if posted[id] {
				want = append(want, id)
			}
		}
		if len(r.log) != len(want) {
			t.Fatalf("wave %d: delivered %v, want %v", wave, r.log, want)
		}
		for i := range want {
			if r.log[i] != want[i] {
				t.Fatalf("wave %d: delivered %v, want %v", wave, r.log, want)
			}
		}
	}
}

// TestDemuxLeaveMidScan makes handlers tear members out of the group while
// the scan that should deliver them is executing: leaving a member below
// the scan point compacts both bitmap levels and shifts every unvisited
// bit down one, and leaving a pending member above the scan point must
// cancel its delivery. The surviving members still deliver in join order.
func TestDemuxLeaveMidScan(t *testing.T) {
	r := newDemuxRig(t, 0)
	ids := make([]int, 0, 140)
	for i := 0; i < 140; i++ { // spans three pending words
		ids = append(ids, r.join(t))
	}
	// Tenant 5's handler removes an already-delivered member (2), itself,
	// and a still-pending member two words up (130).
	r.dom0.SetHandler(r.lport[ids[5]], func() {
		r.log = append(r.log, ids[5])
		r.leave(ids[2])
		r.leave(ids[5])
		r.leave(ids[130])
	})
	for _, i := range []int{2, 5, 70, 130, 139} {
		r.post(ids[i])
	}
	r.log = r.log[:0]
	r.eng.Run()
	want := []int{ids[2], ids[5], ids[70], ids[139]}
	if len(r.log) != len(want) {
		t.Fatalf("delivered %v, want %v", r.log, want)
	}
	for i := range want {
		if r.log[i] != want[i] {
			t.Fatalf("delivered %v, want %v", r.log, want)
		}
	}
	// The group must still be fully usable after mid-scan compaction.
	for _, i := range []int{0, 68, 139} {
		if i == 5 || i == 130 || i == 2 {
			continue
		}
		r.post(ids[i])
	}
	r.log = r.log[:0]
	r.eng.Run()
	if len(r.log) != 3 {
		t.Fatalf("post-compaction wave delivered %v", r.log)
	}
}
