// Command benchjson converts `go test -bench` output on stdin into a small
// JSON document on stdout, so `make bench` can snapshot benchmark numbers
// (BENCH_net.json) that tooling and PR descriptions can diff.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Name            string  `json:"name"`
	Iterations      int64   `json:"iterations"`
	NsPerOp         float64 `json:"ns_per_op"`
	FramesPerSec    float64 `json:"frames_per_sec,omitempty"`
	BytesPerSec     float64 `json:"bytes_per_sec,omitempty"`
	SimFramesPerSec float64 `json:"sim_frames_per_sec,omitempty"`
	SimBytesPerSec  float64 `json:"sim_bytes_per_sec,omitempty"`
	// NsPerFrame is wall-clock nanoseconds per simulated frame (the
	// benchmark's own ns/frame metric) — host-machine dependent.
	NsPerFrame float64 `json:"ns_per_frame,omitempty"`
	BytesPerOp int64   `json:"bytes_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	// ParallelSpeedup is the wall-clock ratio of this benchmark's
	// /queues=1 family baseline to this entry: >1 means the sharded
	// configuration finished the same wave faster than the serial one.
	ParallelSpeedup float64 `json:"parallel_speedup,omitempty"`
	// NsPerGuestOp is the virtual (simulated) nanoseconds of driver-domain
	// time one guest operation costs, derived from simframes/sec on
	// /guests=N sweep entries. Virtual time is deterministic and identical
	// on every host, so scaling gates compare this, not wall clock: wall
	// ns/frame across fleet sizes mostly measures the host's cache
	// hierarchy (a 1024-guest working set misses where 64 guests fit),
	// which says nothing about the simulated data plane.
	NsPerGuestOp float64 `json:"ns_per_guest_op,omitempty"`
}

// fillPerGuest derives ns_per_guest_op for fleet-sweep entries (/guests=N)
// from their virtual throughput.
func fillPerGuest(results []result) {
	for i := range results {
		if strings.Contains(results[i].Name, "/guests=") && results[i].SimFramesPerSec > 0 {
			results[i].NsPerGuestOp = 1e9 / results[i].SimFramesPerSec
		}
	}
}

// fillSpeedups computes ParallelSpeedup for every /queues=N entry from the
// /queues=1 entry of the same benchmark family (the name prefix up to
// "/queues=").
func fillSpeedups(results []result) {
	base := make(map[string]float64)
	for _, r := range results {
		fam, q, ok := splitQueues(r.Name)
		if ok && q == "1" && r.NsPerOp > 0 {
			base[fam] = r.NsPerOp
		}
	}
	for i := range results {
		fam, _, ok := splitQueues(results[i].Name)
		if !ok || results[i].NsPerOp <= 0 {
			continue
		}
		if b, found := base[fam]; found {
			results[i].ParallelSpeedup = b / results[i].NsPerOp
		}
	}
}

// splitQueues splits "Family/queues=N" into the family prefix and N.
func splitQueues(name string) (fam, q string, ok bool) {
	i := strings.LastIndex(name, "/queues=")
	if i < 0 {
		return "", "", false
	}
	return name[:i], name[i+len("/queues="):], true
}

// benchName strips the trailing -N GOMAXPROCS suffix go test appends, and
// only that: sub-benchmark names (Benchmark/queues=4-8) may themselves
// contain dashes, so cut at the LAST dash and only when digits follow.
func benchName(field string) string {
	if i := strings.LastIndex(field, "-"); i > 0 {
		if _, err := strconv.Atoi(field[i+1:]); err == nil {
			return field[:i]
		}
	}
	return field
}

func main() {
	gate := flag.String("gate", "", "comma-separated benchmark entries (e.g. BenchmarkForwardPathMQ/queues=4) that must keep parallel_speedup >= 1 against their /queues=1 family baseline; a NAME@MIN suffix lowers the bar (BenchmarkBlockPathMQ/queues=8@0.9). Exit 1 on any miss")
	gateAllocs := flag.String("gate-allocs", "", "comma-separated benchmark entries that must report 0 allocs/op; exit 1 otherwise")
	gateSpeedup := flag.String("gate-speedup", "", "comma-separated FAMILY=MIN pairs (e.g. ForwardPathMQ=1.0); each family's /queues=4 entry must keep parallel_speedup >= MIN. A full entry name on the left (BlockPathMQ/queues=8=0.9) gates that entry instead. Exit 1 on any miss")
	gateFlat := flag.String("gate-flat", "", "comma-separated BIG:SMALL@MAX entries (e.g. Fleet/guests=1024:Fleet/guests=64@1.25); the BIG entry's ns_per_guest_op must stay <= MAX x the SMALL entry's. Compares virtual per-guest cost, which is deterministic across hosts. Exit 1 on any miss")
	flag.Parse()
	var results []result
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		r := result{Name: benchName(fields[0])}
		r.Iterations, _ = strconv.ParseInt(fields[1], 10, 64)
		// Remaining fields come in "<value> <unit>" pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "frames/sec":
				r.FramesPerSec = v
			case "bytes/sec":
				r.BytesPerSec = v
			case "simframes/sec":
				r.SimFramesPerSec = v
			case "simbytes/sec":
				r.SimBytesPerSec = v
			case "ns/frame":
				r.NsPerFrame = v
			case "B/op":
				r.BytesPerOp = int64(v)
			case "allocs/op":
				r.AllocsPerOp = int64(v)
			}
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	fillSpeedups(results)
	fillPerGuest(results)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if *gate != "" {
		for _, g := range strings.Split(*gate, ",") {
			checkGate(results, strings.TrimSpace(g))
		}
	}
	if *gateAllocs != "" {
		for _, g := range strings.Split(*gateAllocs, ",") {
			checkGateAllocs(results, strings.TrimSpace(g))
		}
	}
	if *gateSpeedup != "" {
		for _, g := range strings.Split(*gateSpeedup, ",") {
			checkGateSpeedup(results, strings.TrimSpace(g))
		}
	}
	if *gateFlat != "" {
		for _, g := range strings.Split(*gateFlat, ",") {
			checkGateFlat(results, strings.TrimSpace(g))
		}
	}
}

// checkGateFlat fails the run if the BIG entry's virtual per-guest cost
// exceeds MAX times the SMALL entry's (gate format BIG:SMALL@MAX). This is
// the fleet-scaling flatness gate: ns_per_guest_op is simulated time, so
// the comparison is exact and machine-independent — any miss is a real
// O(fleet) term creeping back into the data plane, not host cache noise.
func checkGateFlat(results []result, gate string) {
	spec := gate
	i := strings.LastIndex(spec, "@")
	if i < 0 {
		fmt.Fprintf(os.Stderr, "benchjson: bad -gate-flat entry %q (want BIG:SMALL@MAX)\n", gate)
		os.Exit(1)
	}
	max, err := strconv.ParseFloat(spec[i+1:], 64)
	if err != nil || max <= 0 {
		fmt.Fprintf(os.Stderr, "benchjson: bad -gate-flat ratio in %q\n", gate)
		os.Exit(1)
	}
	names := strings.SplitN(spec[:i], ":", 2)
	if len(names) != 2 {
		fmt.Fprintf(os.Stderr, "benchjson: bad -gate-flat entry %q (want BIG:SMALL@MAX)\n", gate)
		os.Exit(1)
	}
	find := func(name string) *result {
		if !strings.HasPrefix(name, "Benchmark") {
			name = "Benchmark" + name
		}
		for j := range results {
			if results[j].Name == name {
				return &results[j]
			}
		}
		fmt.Fprintf(os.Stderr, "benchjson: flatness gate entry %s not found in benchmark output\n", name)
		os.Exit(1)
		return nil
	}
	big, small := find(names[0]), find(names[1])
	if big.NsPerGuestOp <= 0 || small.NsPerGuestOp <= 0 {
		fmt.Fprintf(os.Stderr, "benchjson: flatness gate %s needs ns_per_guest_op on both entries (missing simframes/sec metric?)\n", gate)
		os.Exit(1)
	}
	ratio := big.NsPerGuestOp / small.NsPerGuestOp
	if ratio > max {
		fmt.Fprintf(os.Stderr,
			"benchjson: flatness gate %s failed: measured %s=%.1f / %s=%.1f ns_per_guest_op, ratio %.3f, required <= %.2f\n",
			gate, big.Name, big.NsPerGuestOp, small.Name, small.NsPerGuestOp, ratio, max)
		os.Exit(1)
	}
}

// checkGateSpeedup fails the run if a family's canonical parallel entry
// (its /queues=4 sub-benchmark, unless the gate names a specific entry)
// reports parallel_speedup below the given minimum. Unlike -gate, the bar
// is explicit per family, so CI can hold the multi-queue configurations to
// a floor that a regressing scheduler or barrier change would fall through.
func checkGateSpeedup(results []result, gate string) {
	i := strings.LastIndex(gate, "=")
	if i <= 0 {
		fmt.Fprintf(os.Stderr, "benchjson: bad -gate-speedup entry %q (want FAMILY=MIN)\n", gate)
		os.Exit(1)
	}
	min, err := strconv.ParseFloat(gate[i+1:], 64)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: bad -gate-speedup threshold %q\n", gate)
		os.Exit(1)
	}
	name := gate[:i]
	if !strings.Contains(name, "/queues=") {
		name += "/queues=4"
	}
	if !strings.HasPrefix(name, "Benchmark") {
		name = "Benchmark" + name
	}
	for _, r := range results {
		if r.Name != name {
			continue
		}
		if r.ParallelSpeedup == 0 {
			fmt.Fprintf(os.Stderr, "benchjson: speedup gate %s has no /queues=1 family baseline\n", name)
			os.Exit(1)
		}
		if r.ParallelSpeedup < min {
			fmt.Fprintf(os.Stderr, "benchjson: speedup gate %s failed: measured parallel_speedup=%.3f, required >= %.2f (tolerances documented in EXPERIMENTS.md)\n",
				name, r.ParallelSpeedup, min)
			os.Exit(1)
		}
		return
	}
	fmt.Fprintf(os.Stderr, "benchjson: speedup gate %s not found in benchmark output\n", name)
	os.Exit(1)
}

// checkGate fails the run if the gated entry's parallel_speedup against
// its /queues=1 family baseline is below the gate's threshold (1 by
// default; a NAME@MIN suffix lowers it for families whose parallel win
// is real but shy of break-even at the gated point).
func checkGate(results []result, gate string) {
	min := 1.0
	if i := strings.LastIndex(gate, "@"); i >= 0 {
		v, err := strconv.ParseFloat(gate[i+1:], 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: bad gate threshold %q\n", gate)
			os.Exit(1)
		}
		min, gate = v, gate[:i]
	}
	for _, r := range results {
		if r.Name != gate {
			continue
		}
		if r.ParallelSpeedup == 0 {
			fmt.Fprintf(os.Stderr, "benchjson: gate %s has no /queues=1 family baseline\n", gate)
			os.Exit(1)
		}
		if r.ParallelSpeedup < min {
			fmt.Fprintf(os.Stderr, "benchjson: gate %s failed: measured parallel_speedup=%.3f against its /queues=1 family baseline, required >= %.2f (tolerances documented in EXPERIMENTS.md)\n",
				gate, r.ParallelSpeedup, min)
			os.Exit(1)
		}
		return
	}
	fmt.Fprintf(os.Stderr, "benchjson: gate %s not found in benchmark output\n", gate)
	os.Exit(1)
}

// checkGateAllocs fails the run if the gated entry allocates: families
// like BenchmarkFleet have no /queues=1 wall-clock baseline, but their
// steady state must stay allocation-free at every scale.
func checkGateAllocs(results []result, gate string) {
	for _, r := range results {
		if r.Name != gate {
			continue
		}
		if r.AllocsPerOp != 0 {
			fmt.Fprintf(os.Stderr, "benchjson: allocs gate %s failed: measured %d allocs/op (%d B/op), required 0 allocs/op\n",
				gate, r.AllocsPerOp, r.BytesPerOp)
			os.Exit(1)
		}
		return
	}
	fmt.Fprintf(os.Stderr, "benchjson: gate %s not found in benchmark output\n", gate)
	os.Exit(1)
}
