package analyzers_test

import (
	"testing"

	"kite/internal/lint/analysistest"
	"kite/internal/lint/analyzers"
)

func TestEvblock(t *testing.T) {
	analysistest.Run(t, "kite/fixtures/evblock", "testdata/src/evblock", analyzers.Evblock)
}
