package nat

import (
	"encoding/binary"

	"kite/internal/netpkt"
	"kite/internal/sim"
	"kite/internal/timewheel"
)

// The flow table is sharded the same way the bridge FDB is: a power-of-two
// array of shards selected by the top bits of a Toeplitz hash over the
// flow key (netpkt.RSS — the hash family the data plane already trusts),
// so lookup stays O(1), allocation-free, and deterministic at any flow
// count. Each shard keeps its flow records in a slab with an intrusive
// free-list — records are reused in place, so a driver domain churning
// through tenant connect/disconnect cycles reaches a high-water mark and
// never allocates again — and an open-addressing index of slab positions
// with backward-shift deletion. Slab positions are stable for a record's
// lifetime, which lets the reverse (external-port) table be a flat array
// of packed references instead of a second map.

const (
	natShardBits = 3
	natShardCnt  = 1 << natShardBits
	// natMinSlots is a shard's initial index capacity; power of two.
	natMinSlots = 64
	// portBase is the first dynamic external port; everything below is
	// reserved for static forwards and well-known services.
	portBase = 20000
	// portSpan is the size of the dynamic port space — the hard capacity
	// of the translator (per L4 protocol space merged, as before).
	portSpan = 1<<16 - portBase
)

// flowEnt is one translation record in a shard's slab. When free, next
// links the shard's free-list; when live, hash caches the key's Toeplitz
// hash for index maintenance.
type flowEnt struct {
	key     flowKey
	hash    uint32
	extPort uint16
	used    bool
	dyn     bool  // extPort was dynamically allocated (vs a static forward's)
	next    int32 // free-list link (slab index), -1 terminates
	lastUse sim.Time
	// node is the record's aging-wheel node; a freed or recycled slab slot
	// orphans it and the next aging pass reaps it by handle mismatch.
	node timewheel.Handle
}

// flowShard is one slab + open-addressing index. index slots hold slab
// position + 1 (0 means empty) probed linearly on the low hash bits.
type flowShard struct {
	index    []int32
	slab     []flowEnt
	freeHead int32
	count    int
}

// flowTable is the sharded flow store.
type flowTable struct {
	hash   netpkt.RSS
	shards [natShardCnt]flowShard
	count  int
	// wheel ages records by last use: O(1) node insert per flow, no wheel
	// traffic on the rewrite path, expiry cost proportional to records
	// actually due.
	wheel *timewheel.Wheel
}

// flowRef packs (shard, slab index) for the reverse table: shard in the
// top bits, slab position + 1 in the rest; zero means no flow.
type flowRef int32

func packRef(shard int, idx int32) flowRef {
	return flowRef(int32(shard)<<24 | (idx + 1))
}

func (r flowRef) unpack() (int, int32) { return int(r >> 24), int32(r&0xffffff) - 1 }

// natSeed keys the flow table's Toeplitz tables (fixed: deterministic
// spreading, independent of the rig RSS seed).
const natSeed = 0x0A10_5EED_0000_0002

// natWheelGran × natWheelBuckets is the wheel rotation (see the bridge
// FDB's wheel for the sizing rule).
const (
	natWheelGran    = sim.Second
	natWheelBuckets = 256
)

func (t *flowTable) init() {
	t.hash = netpkt.NewRSS(natSeed)
	for i := range t.shards {
		t.shards[i].freeHead = -1
	}
	t.wheel = timewheel.New(natWheelGran, natWheelBuckets)
}

// keyHash pads the flow key into the Toeplitz window.
//
//kite:hotpath
func (t *flowTable) keyHash(key flowKey) uint32 {
	var in [12]byte
	copy(in[0:4], key.guestIP[:])
	in[4] = key.proto
	binary.BigEndian.PutUint16(in[8:10], key.guestPt)
	return t.hash.Hash12(&in)
}

// lookup returns the live record for key, or nil. One probe run in one
// shard; no allocation.
//
//kite:hotpath
func (t *flowTable) lookup(key flowKey) *flowEnt {
	h := t.keyHash(key)
	s := &t.shards[h>>(32-natShardBits)]
	if len(s.index) == 0 {
		return nil
	}
	mask := uint32(len(s.index) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		ref := s.index[i]
		if ref == 0 {
			return nil
		}
		e := &s.slab[ref-1]
		if e.key == key {
			return e
		}
	}
}

// insert claims a record for key (which must not be present), stamped as
// last used now, and returns it plus its packed reference for the reverse
// table. The record comes from the shard's free-list when one is
// available; otherwise the slab grows (amortized to the churn high-water
// mark).
func (t *flowTable) insert(key flowKey, now sim.Time) (*flowEnt, flowRef) {
	h := t.keyHash(key)
	si := int(h >> (32 - natShardBits))
	s := &t.shards[si]
	var idx int32
	if s.freeHead >= 0 {
		idx = s.freeHead
		s.freeHead = s.slab[idx].next
	} else {
		idx = int32(len(s.slab))
		s.slab = append(s.slab, flowEnt{}) //kite:alloc-ok slab grows to the churn high-water mark, then the free-list recycles
	}
	e := &s.slab[idx]
	ref := packRef(si, idx)
	*e = flowEnt{key: key, hash: h, used: true, next: -1, lastUse: now,
		node: t.wheel.Add(uint64(ref), now)}
	if len(s.index) == 0 || (s.count+1)*4 > len(s.index)*3 {
		s.growIndex()
	}
	mask := uint32(len(s.index) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		if s.index[i] == 0 {
			s.index[i] = idx + 1
			break
		}
	}
	s.count++
	t.count++
	return e, ref
}

// growIndex doubles the shard's index (or seeds it) and reinserts every
// live reference by cached hash.
func (s *flowShard) growIndex() {
	old := s.index
	n := 2 * len(old)
	if n < natMinSlots {
		n = natMinSlots
	}
	s.index = make([]int32, n) //kite:alloc-ok amortized shard-index doubling
	mask := uint32(n - 1)
	for _, ref := range old {
		if ref == 0 {
			continue
		}
		h := s.slab[ref-1].hash
		for j := h & mask; ; j = (j + 1) & mask {
			if s.index[j] == 0 {
				s.index[j] = ref
				break
			}
		}
	}
}

// get resolves a packed reference from the reverse table.
//
//kite:hotpath
func (t *flowTable) get(r flowRef) *flowEnt {
	if r == 0 {
		return nil
	}
	si, idx := r.unpack()
	return &t.shards[si].slab[idx]
}

// remove deletes key's record: backward-shift in the index, record pushed
// onto the shard free-list. Returns the dead record's external port (for
// reverse-table cleanup) and whether it existed.
func (t *flowTable) remove(key flowKey) (uint16, bool) {
	h := t.keyHash(key)
	si := int(h >> (32 - natShardBits))
	s := &t.shards[si]
	if len(s.index) == 0 {
		return 0, false
	}
	mask := uint32(len(s.index) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		ref := s.index[i]
		if ref == 0 {
			return 0, false
		}
		idx := ref - 1
		e := &s.slab[idx]
		if e.key != key {
			continue
		}
		ext := e.extPort
		e.used = false
		e.next = s.freeHead
		s.freeHead = idx
		s.deleteIndexAt(i)
		s.count--
		t.count--
		return ext, true
	}
}

// deleteIndexAt removes index slot i with backward-shift deletion (the
// same hole-filling walk as the bridge FDB; home slots come from the
// records' cached hashes).
func (s *flowShard) deleteIndexAt(i uint32) {
	mask := uint32(len(s.index) - 1)
	hole := i
	for {
		s.index[hole] = 0
		j := hole
		for {
			j = (j + 1) & mask
			ref := s.index[j]
			if ref == 0 {
				return
			}
			home := s.slab[ref-1].hash & mask
			if (j-home)&mask >= (j-hole)&mask {
				s.index[hole] = ref
				hole = j
				break
			}
		}
	}
}

// expire removes records idle past maxIdle, invoking dead for each before
// unlinking so the caller can clear its reverse entry. The wheel pass
// probes only records whose last use has fallen behind the cutoff (plus
// orphaned nodes that came due); the expired set is exactly what a full
// slab sweep would drop, in deterministic node order.
func (t *flowTable) expire(now, maxIdle sim.Time, dead func(*flowEnt)) int {
	dropped := 0
	t.wheel.Advance(now-maxIdle-1,
		func(h timewheel.Handle, key uint64) sim.Time {
			e := t.get(flowRef(key))
			if e == nil || !e.used || e.node != h {
				return timewheel.Gone
			}
			return e.lastUse
		},
		func(key uint64) {
			e := t.get(flowRef(key))
			dead(e)
			t.remove(e.key)
			dropped++
		})
	return dropped
}
