// Package netif defines the shared netif ring protocol between netfront
// and netback (xen/io/netif.h): request/response formats for the Tx and Rx
// rings and the registry through which a backend "maps" a frontend's ring
// pages. One Tx ring carries guest→backend packets, one Rx ring carries
// backend→guest packets; both are allocated by the frontend (§2.2.1).
package netif

import (
	"fmt"

	"kite/internal/ring"
	"kite/internal/xen"
)

// RingSize is the netif ring slot count (matching Xen's 256-slot rings).
const RingSize = 256

// MaxQueues caps the negotiated queue count per vif, like xen-netback's
// xenvif_max_queues module parameter.
const MaxQueues = 8

// Status codes in responses (netif.h's NETIF_RSP_*).
const (
	StatusOK      = 0
	StatusError   = -1
	StatusDropped = -2
)

// TxRequest asks the backend to transmit a frame stored in a granted page.
type TxRequest struct {
	ID     uint16
	Ref    xen.GrantRef
	Offset int
	Len    int
}

// TxResponse reports completion of a TxRequest.
type TxResponse struct {
	ID     uint16
	Status int8
}

// RxRequest posts a granted page the backend may fill with a received
// frame (rx-copy mode: the backend grant-copies into it).
type RxRequest struct {
	ID  uint16
	Ref xen.GrantRef
}

// RxResponse reports a filled Rx buffer.
type RxResponse struct {
	ID     uint16
	Offset int
	Len    int
	Status int8
}

// TxRing is one guest→backend ring.
type TxRing = ring.Ring[TxRequest, TxResponse]

// RxRing is one backend→guest ring.
type RxRing = ring.Ring[RxRequest, RxResponse]

// TxRings is the multi-queue set of Tx rings.
type TxRings = ring.MultiRing[TxRequest, TxResponse]

// RxRings is the multi-queue set of Rx rings.
type RxRings = ring.MultiRing[RxRequest, RxResponse]

// NewTxRing allocates a Tx ring of the standard size.
func NewTxRing() *TxRing { return ring.New[TxRequest, TxResponse](RingSize) }

// NewRxRing allocates an Rx ring of the standard size.
func NewRxRing() *RxRing { return ring.New[RxRequest, RxResponse](RingSize) }

// NewTxRings allocates n standard-size Tx rings.
func NewTxRings(n int) *TxRings { return ring.NewMulti[TxRequest, TxResponse](n, RingSize) }

// NewRxRings allocates n standard-size Rx rings.
func NewRxRings(n int) *RxRings { return ring.NewMulti[RxRequest, RxResponse](n, RingSize) }

// Channel bundles what a backend obtains by mapping the frontend's shared
// pages: the negotiated set of Tx and Rx rings, one pair per queue. (Event
// channels are negotiated separately through xenstore, as for real.)
type Channel struct {
	Tx *TxRings
	Rx *RxRings
}

// NewChannel allocates a channel with n queue pairs.
func NewChannel(n int) *Channel {
	return &Channel{Tx: NewTxRings(n), Rx: NewRxRings(n)}
}

// NumQueues returns the channel's queue count.
func (c *Channel) NumQueues() int { return c.Tx.NumQueues() }

// Registry stands in for the grant-mapping of ring pages: the frontend
// publishes its rings under (frontend domain, device id); the backend
// claims them after reading the ring references from xenstore and paying
// the map hypercalls.
type Registry struct {
	channels map[string]*Channel
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{channels: make(map[string]*Channel)}
}

func key(dom xen.DomID, devid int) string { return fmt.Sprintf("%d/%d", dom, devid) }

// Publish registers a frontend's rings.
func (r *Registry) Publish(dom xen.DomID, devid int, ch *Channel) {
	r.channels[key(dom, devid)] = ch
}

// Claim returns the rings for (dom, devid) or an error if the frontend has
// not published them (bad ring-ref).
func (r *Registry) Claim(dom xen.DomID, devid int) (*Channel, error) {
	ch := r.channels[key(dom, devid)]
	if ch == nil {
		return nil, fmt.Errorf("netif: no rings published for domain %d device %d", dom, devid)
	}
	return ch, nil
}

// Drop removes a publication (frontend teardown).
func (r *Registry) Drop(dom xen.DomID, devid int) {
	delete(r.channels, key(dom, devid))
}
