// Package mem provides per-domain page arenas. Every Xen domain in the
// simulation owns an Arena of 4 KiB pages; grant-table operations move real
// bytes between pages of different arenas, so data integrity through the
// split-driver path is checkable end to end.
package mem

import "fmt"

// PageSize is the x86 page size used throughout Xen's grant interface.
const PageSize = 4096

// PageID identifies a page within one arena (a pseudo physical frame
// number).
type PageID uint64

// Page is one 4 KiB frame of simulated guest memory.
type Page struct {
	ID   PageID
	Data []byte // always PageSize long

	arena *Arena
	freed bool
}

// Arena is a domain's memory: an allocator handing out fixed-size pages up
// to a configured maximum (the domain's RAM assignment).
type Arena struct {
	name     string
	maxPages int
	pages    map[PageID]*Page
	free     []*Page
	nextID   PageID

	allocs uint64
	frees  uint64
}

// NewArena creates an arena able to hold maxBytes of page-granular memory.
func NewArena(name string, maxBytes int64) *Arena {
	if maxBytes < PageSize {
		panic(fmt.Sprintf("mem: arena %q smaller than one page", name))
	}
	return &Arena{
		name:     name,
		maxPages: int(maxBytes / PageSize),
		pages:    make(map[PageID]*Page),
	}
}

// Name returns the arena's name (the owning domain).
func (a *Arena) Name() string { return a.name }

// Capacity returns the maximum number of pages.
func (a *Arena) Capacity() int { return a.maxPages }

// InUse returns the number of currently allocated pages.
func (a *Arena) InUse() int { return len(a.pages) - len(a.free) }

// Allocs returns the lifetime allocation count.
func (a *Arena) Allocs() uint64 { return a.allocs }

// Alloc returns a zeroed page, or an error if the arena is exhausted —
// which models a domain running out of its RAM assignment.
func (a *Arena) Alloc() (*Page, error) {
	a.allocs++
	if n := len(a.free); n > 0 {
		p := a.free[n-1]
		a.free = a.free[:n-1]
		p.freed = false
		clear(p.Data)
		return p, nil
	}
	if len(a.pages) >= a.maxPages {
		return nil, fmt.Errorf("mem: arena %q out of memory (%d pages)", a.name, a.maxPages)
	}
	a.nextID++
	p := &Page{ID: a.nextID, Data: make([]byte, PageSize), arena: a} //kite:alloc-ok arena growth on free-list miss; pages recycle
	a.pages[p.ID] = p                                                //kite:alloc-ok arena growth on free-list miss
	return p, nil
}

// MustAlloc is Alloc for paths where exhaustion is a configuration error.
func (a *Arena) MustAlloc() *Page {
	p, err := a.Alloc()
	if err != nil {
		panic(err)
	}
	return p
}

// AllocN allocates n pages, freeing any partial allocation on failure.
func (a *Arena) AllocN(n int) ([]*Page, error) {
	pages := make([]*Page, 0, n)
	for i := 0; i < n; i++ {
		p, err := a.Alloc()
		if err != nil {
			for _, q := range pages {
				a.Free(q)
			}
			return nil, err
		}
		pages = append(pages, p)
	}
	return pages, nil
}

// Free returns a page to the arena. Freeing a foreign or already-freed page
// panics: both indicate memory-safety bugs in a driver.
func (a *Arena) Free(p *Page) {
	if p.arena != a {
		panic(fmt.Sprintf("mem: page %d freed to wrong arena %q", p.ID, a.name))
	}
	if p.freed {
		panic(fmt.Sprintf("mem: double free of page %d in arena %q", p.ID, a.name))
	}
	p.freed = true
	a.frees++
	a.free = append(a.free, p)
}

// Lookup returns the live page with the given ID, or nil.
func (a *Arena) Lookup(id PageID) *Page {
	p := a.pages[id]
	if p == nil || p.freed {
		return nil
	}
	return p
}

// Owner returns the arena a page belongs to.
func (p *Page) Owner() *Arena { return p.arena }

// Freed reports whether the page has been returned to its arena.
func (p *Page) Freed() bool { return p.freed }

// CopyInto copies len(src) bytes into the page at off.
func (p *Page) CopyInto(off int, src []byte) {
	if off < 0 || off+len(src) > PageSize {
		panic(fmt.Sprintf("mem: copy of %d bytes at offset %d overflows page", len(src), off))
	}
	copy(p.Data[off:], src)
}

// CopyFrom copies n bytes out of the page starting at off.
func (p *Page) CopyFrom(off, n int) []byte {
	if off < 0 || off+n > PageSize {
		panic(fmt.Sprintf("mem: read of %d bytes at offset %d overflows page", n, off))
	}
	out := make([]byte, n)
	copy(out, p.Data[off:])
	return out
}
