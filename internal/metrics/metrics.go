// Package metrics collects measurement series for experiments and renders
// the fixed-width tables the benchmark harness prints. It implements the
// statistics the paper reports: means, relative standard deviation
// (Table 4), and latency percentiles.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is an append-only collection of float64 samples.
type Series struct {
	name    string
	samples []float64
	sorted  bool
}

// NewSeries returns an empty series with a display name.
func NewSeries(name string) *Series { return &Series{name: name} }

// Name returns the series' display name.
func (s *Series) Name() string { return s.name }

// Add appends one sample.
func (s *Series) Add(v float64) {
	s.samples = append(s.samples, v)
	s.sorted = false
}

// N returns the number of samples.
func (s *Series) N() int { return len(s.samples) }

// Sum returns the sum of all samples.
func (s *Series) Sum() float64 {
	var sum float64
	for _, v := range s.samples {
		sum += v
	}
	return sum
}

// Mean returns the arithmetic mean, or 0 for an empty series.
func (s *Series) Mean() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	return s.Sum() / float64(len(s.samples))
}

// Min returns the smallest sample, or 0 for an empty series.
func (s *Series) Min() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	m := s.samples[0]
	for _, v := range s.samples[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest sample, or 0 for an empty series.
func (s *Series) Max() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	m := s.samples[0]
	for _, v := range s.samples[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// StdDev returns the population standard deviation.
func (s *Series) StdDev() float64 {
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	mean := s.Mean()
	var sq float64
	for _, v := range s.samples {
		d := v - mean
		sq += d * d
	}
	return math.Sqrt(sq / float64(n))
}

// RSD returns the relative standard deviation in percent (Table 4's
// metric): 100 * stddev / mean. Zero-mean series report 0.
func (s *Series) RSD() float64 {
	mean := s.Mean()
	if mean == 0 {
		return 0
	}
	return 100 * s.StdDev() / math.Abs(mean)
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank on the sorted samples.
func (s *Series) Percentile(p float64) float64 {
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.samples)
		s.sorted = true
	}
	if p <= 0 {
		return s.samples[0]
	}
	if p >= 100 {
		return s.samples[n-1]
	}
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	return s.samples[rank-1]
}

// Median returns the 50th percentile.
func (s *Series) Median() float64 { return s.Percentile(50) }

// Table renders experiment rows as a fixed-width text table, matching the
// output style of cmd/kitebench.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf formats each cell with fmt.Sprint and appends the row.
func (t *Table) AddRowf(cells ...any) {
	str := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			str[i] = FormatFloat(v)
		default:
			str[i] = fmt.Sprint(c)
		}
	}
	t.AddRow(str...)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// FormatFloat renders v with precision appropriate to its magnitude, so
// tables stay readable across Gbps and sub-millisecond values.
func FormatFloat(v float64) string {
	av := math.Abs(v)
	switch {
	case av == 0:
		return "0"
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	case av >= 0.1:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.5f", v)
	}
}

// Ratio returns a/b guarding against division by zero.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// WithinFactor reports whether a and b agree within factor f (f >= 1):
// max(a,b)/min(a,b) <= f. Non-positive inputs report false.
func WithinFactor(a, b, f float64) bool {
	if a <= 0 || b <= 0 {
		return false
	}
	hi, lo := a, b
	if lo > hi {
		hi, lo = lo, hi
	}
	return hi/lo <= f
}
