package analyzers_test

import (
	"testing"

	"kite/internal/lint/analysistest"
	"kite/internal/lint/analyzers"
)

func TestShardsafe(t *testing.T) {
	analysistest.Run(t, "kite/fixtures/shardsafe", "testdata/src/shardsafe", analyzers.Shardsafe)
}
