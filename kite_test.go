package kite

import (
	"testing"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	tb := NewTestbed(100)
	nd, err := tb.System.CreateNetworkDomain(NetworkDomainConfig{
		Kind: KindKite, NIC: tb.ServerNIC,
	})
	if err != nil {
		t.Fatal(err)
	}
	guest, err := tb.System.CreateGuest(GuestConfig{
		Name: "domU", IP: tb.GuestIP, Net: nd, Seed: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tb.System.RunReady(guest.Ready, 500000) {
		t.Fatal("guest never ready")
	}
	// Let the system go idle first: a cold ping pays the idle-vCPU wake
	// path, the regime Figure 7's ping numbers live in.
	tb.System.Eng.RunFor(5 * Millisecond)
	var rtt Time = -1
	tb.Client.Stack.Ping(tb.GuestIP, 56, func(d Time) { rtt = d })
	if !tb.System.RunReady(func() bool { return rtt >= 0 }, 500000) {
		t.Fatal("ping never completed")
	}
	// Calibrated PV-path RTT should land in the paper's neighbourhood
	// (Fig 7: 0.31 ms for Kite); accept a generous band.
	if rtt < 50*Microsecond || rtt > Millisecond {
		t.Fatalf("PV ping RTT = %v, outside plausible band", rtt)
	}
}

func TestFacadeProfiles(t *testing.T) {
	if len(UbuntuDriverDomain().Syscalls) != 171 {
		t.Fatal("ubuntu syscall inventory wrong through facade")
	}
	if len(KiteNetworkDomain().Syscalls) != 14 || len(KiteStorageDomain().Syscalls) != 18 {
		t.Fatal("kite syscall inventories wrong through facade")
	}
	if KiteDHCPDomain().BootTime() >= UbuntuGuest().BootTime() {
		t.Fatal("daemon VM boot not lightweight")
	}
}

func TestFacadeSecurity(t *testing.T) {
	kiteNet := KiteNetworkDomain()
	for _, cve := range Table3CVEs() {
		if CVEApplies(cve, kiteNet) {
			t.Fatalf("%s applies to the Kite network domain", cve.ID)
		}
	}
	counts := GadgetCounts(KiteNetworkDomainScanProfile())
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		t.Fatal("gadget scan returned nothing")
	}
}

func TestFacadeStorageRig(t *testing.T) {
	rig, err := NewStorageRig(StorageRigConfig{Kind: KindKite, Seed: 5, DiskBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if rig.Guest.FS == nil || rig.Guest.Disk == nil {
		t.Fatal("storage rig missing filesystem or disk")
	}
	if !rig.Guest.Disk.Persistent() {
		t.Fatal("kite vbd should negotiate persistent grants")
	}
}
