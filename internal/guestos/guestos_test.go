package guestos

import (
	"testing"

	"kite/internal/sim"
)

func TestSyscallCountsMatchPaper(t *testing.T) {
	// Figure 4a: Kite net 14, Kite storage 18, Ubuntu 171 (10x more).
	if n := len(KiteNetworkSyscalls); n != 14 {
		t.Fatalf("kite network syscalls = %d, want 14", n)
	}
	if n := len(KiteStorageSyscalls); n != 18 {
		t.Fatalf("kite storage syscalls = %d, want 18", n)
	}
	if n := len(UbuntuDriverDomainSyscalls); n != 171 {
		t.Fatalf("ubuntu syscalls = %d, want 171", n)
	}
	ratio := float64(len(UbuntuDriverDomainSyscalls)) / float64(len(KiteNetworkSyscalls))
	if ratio < 10 {
		t.Fatalf("syscall reduction = %.1fx, want >= 10x", ratio)
	}
}

func TestNoDuplicateSyscalls(t *testing.T) {
	for _, list := range [][]string{KiteNetworkSyscalls, KiteStorageSyscalls, UbuntuDriverDomainSyscalls} {
		seen := map[string]bool{}
		for _, s := range list {
			if seen[s] {
				t.Fatalf("duplicate syscall %q", s)
			}
			seen[s] = true
		}
	}
}

func TestImageSizesMatchPaper(t *testing.T) {
	// Figure 4b: Linux kernel+modules ~43 MB, Kite image ~10x smaller.
	ubuntu := UbuntuDriverDomain()
	kite := KiteNetworkDomain()
	uMB := float64(ubuntu.KernelImageBytes()) / (1 << 20)
	kMB := float64(kite.KernelImageBytes()) / (1 << 20)
	if uMB < 40 || uMB > 46 {
		t.Fatalf("ubuntu kernel+modules = %.1f MB, want ~43", uMB)
	}
	if ratio := uMB / kMB; ratio < 9 || ratio > 12 {
		t.Fatalf("image ratio = %.1fx, want ~10x", ratio)
	}
}

func TestBootTimesMatchPaper(t *testing.T) {
	// Figure 4c / claim C1: Kite ~7 s, Ubuntu ~75 s, at least 10x faster.
	u := UbuntuDriverDomain().BootTime()
	k := KiteNetworkDomain().BootTime()
	if u != 75*sim.Second {
		t.Fatalf("ubuntu boot = %v, want 75s", u)
	}
	if k != 7*sim.Second {
		t.Fatalf("kite boot = %v, want 7s", k)
	}
	if u < 10*k {
		t.Fatalf("boot speedup %.1fx, want >= 10x", float64(u)/float64(k))
	}
}

func TestBootSequenceRuns(t *testing.T) {
	eng := sim.NewEngine()
	p := KiteStorageDomain()
	var phases []string
	var doneAt sim.Time = -1
	p.Boot(eng, func(ph BootPhase) { phases = append(phases, ph.Name) }, func() { doneAt = eng.Now() })
	eng.Run()
	if len(phases) != len(p.BootPhases) {
		t.Fatalf("observed %d phases, want %d", len(phases), len(p.BootPhases))
	}
	if doneAt != p.BootTime() {
		t.Fatalf("boot completed at %v, want %v", doneAt, p.BootTime())
	}
}

func TestSyscallAndComponentLookup(t *testing.T) {
	k := KiteNetworkDomain()
	if !k.HasSyscall("socket") || k.HasSyscall("execve") {
		t.Fatal("kite net syscall lookup wrong")
	}
	u := UbuntuDriverDomain()
	if !u.HasSyscall("execve") || !u.HasComponent("python3") {
		t.Fatal("ubuntu lookup wrong")
	}
	if k.HasComponent("python3") || k.HasComponent("bash") {
		t.Fatal("kite ships userspace it should not")
	}
}

func TestProfilesHaveDistinctParameters(t *testing.T) {
	u := UbuntuDriverDomain()
	k := KiteNetworkDomain()
	if k.MemBytes >= u.MemBytes {
		t.Fatal("kite domain should need less RAM (§5: 1GB vs 2GB)")
	}
	if k.IRQLatency >= u.IRQLatency {
		t.Fatal("rumprun upcall latency should be below Linux's")
	}
	g := UbuntuGuest()
	if g.VCPUs != 22 || g.MemBytes != 5<<30 {
		t.Fatalf("guest profile = %d vCPUs / %d MB", g.VCPUs, g.MemBytes>>20)
	}
}

func TestGadgetScanProfilesOrdering(t *testing.T) {
	profiles := GadgetScanProfiles()
	if profiles[0].Name != "Kite" {
		t.Fatal("first scan profile must be Kite")
	}
	for i := 1; i < len(profiles); i++ {
		if profiles[i].CodeBytes <= profiles[i-1].CodeBytes {
			t.Fatalf("scan profiles not strictly increasing at %s", profiles[i].Name)
		}
	}
}

func TestDHCPDomainProfile(t *testing.T) {
	p := KiteDHCPDomain()
	if !p.HasComponent("opendhcp") {
		t.Fatal("dhcp domain missing app")
	}
	if p.BootTime() >= UbuntuDriverDomain().BootTime() {
		t.Fatal("daemon VM boot not lightweight")
	}
}
