package workload

import "testing"

func TestConsumeHTTPResponse(t *testing.T) {
	resp := []byte("HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhello")
	n, body, ok := consumeHTTPResponse(resp)
	if !ok || n != len(resp) || body != 5 {
		t.Fatalf("n=%d body=%d ok=%v", n, body, ok)
	}
	// Partial body: incomplete.
	if _, _, ok := consumeHTTPResponse(resp[:len(resp)-1]); ok {
		t.Fatal("partial body parsed")
	}
	// Headers only: incomplete.
	if _, _, ok := consumeHTTPResponse([]byte("HTTP/1.1 200 OK\r\nContent-Len")); ok {
		t.Fatal("partial header parsed")
	}
	// No Content-Length: header-only response.
	hdr := []byte("HTTP/1.1 304 Not Modified\r\nServer: x\r\n\r\n")
	n, body, ok = consumeHTTPResponse(hdr)
	if !ok || n != len(hdr) || body != 0 {
		t.Fatalf("no-CL response: n=%d body=%d ok=%v", n, body, ok)
	}
	// Two pipelined responses: first consumed exactly.
	two := append(append([]byte{}, resp...), resp...)
	n, _, ok = consumeHTTPResponse(two)
	if !ok || n != len(resp) {
		t.Fatalf("pipelined first = %d, want %d", n, len(resp))
	}
}

func TestConsumeKVReply(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{"OK\r\n", 4},
		{"NIL\r\n", 5},
		{"ERR bad\r\n", 9},
		{"VALUE 3\r\nabc\r\n", 14},
		{"VALUE 3\r\nab", 0}, // incomplete body
		{"VALUE", 0},         // incomplete line
		{"", 0},
	}
	for _, c := range cases {
		if got := consumeKVReply([]byte(c.in)); got != c.want {
			t.Errorf("consumeKVReply(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestConsumeSQLReply(t *testing.T) {
	full := []byte("D 4\nabcd")
	if got := consumeSQLReply(full); got != len(full) {
		t.Fatalf("full reply = %d, want %d", got, len(full))
	}
	if got := consumeSQLReply([]byte("D 4\nab")); got != 0 {
		t.Fatalf("partial data = %d, want 0", got)
	}
	if got := consumeSQLReply([]byte("E bad query\n")); got != 12 {
		t.Fatalf("error reply = %d", got)
	}
	if got := consumeSQLReply([]byte("D 4")); got != 0 {
		t.Fatalf("no newline = %d, want 0", got)
	}
}

func TestSscanInt(t *testing.T) {
	var v int
	if n, err := sscanInt("1234xyz", &v); err != nil || n != 4 || v != 1234 {
		t.Fatalf("n=%d v=%d err=%v", n, v, err)
	}
	if _, err := sscanInt("xyz", &v); err == nil {
		t.Fatal("non-digit parsed")
	}
}
