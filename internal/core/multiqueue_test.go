package core

import (
	"bytes"
	"testing"

	"kite/internal/netstack"
	"kite/internal/sim"
)

// These tests exercise the multi-queue PV transports end to end: xenbus
// negotiation, RSS steering (vif) and extent striping (vbd), data
// integrity across queues, and the scaling the sharded backend workers
// buy when the driver domain has one vCPU per queue.

// TestNetMQNegotiationAndSteering brings up a 4-queue vif and checks that
// both ends negotiated the same queue count, that flows with distinct
// 4-tuples spread over all queues, and that every datagram still arrives
// intact and exactly once in each direction.
func TestNetMQNegotiationAndSteering(t *testing.T) {
	rig, err := NewNetworkRigCfg(NetworkRigConfig{Kind: KindKite, Seed: 0x3a9, Queues: 4})
	if err != nil {
		t.Fatal(err)
	}
	if n := rig.Guest.Net.NumQueues(); n != 4 {
		t.Fatalf("frontend negotiated %d queues, want 4", n)
	}
	vifs := rig.ND.Driver.VIFs()
	if len(vifs) != 1 {
		t.Fatalf("got %d VIFs, want 1", len(vifs))
	}
	vif := vifs[0]
	if n := vif.NumQueues(); n != 4 {
		t.Fatalf("backend negotiated %d queues, want 4", n)
	}

	payload := pattern(600)
	eng := rig.System.Eng
	const flows, perFlow = 32, 8
	gotTx := 0
	rig.Client.Stack.BindUDP(9000, func(p netstack.UDPPacket) {
		if !bytes.Equal(p.Data, payload) {
			t.Fatal("corrupted payload guest->client")
		}
		gotTx++
	})
	for f := 0; f < flows; f++ {
		for i := 0; i < perFlow; i++ {
			rig.Guest.Stack.SendUDP(rig.ClientIP, 9000, uint16(10000+f), payload)
			eng.Run()
		}
	}
	if gotTx != flows*perFlow {
		t.Fatalf("guest->client delivered %d of %d", gotTx, flows*perFlow)
	}
	// Each queue must have carried traffic: the Toeplitz hash over 32
	// distinct source ports cannot collapse onto fewer than 4 queues.
	for i := 0; i < vif.NumQueues(); i++ {
		if qs := vif.QueueStats(i); qs.TxFrames == 0 {
			t.Errorf("vif queue %d carried no Tx frames", i)
		}
	}

	gotRx := 0
	rig.Guest.Stack.BindUDP(9001, func(p netstack.UDPPacket) {
		if !bytes.Equal(p.Data, payload) {
			t.Fatal("corrupted payload client->guest")
		}
		gotRx++
	})
	for f := 0; f < flows; f++ {
		rig.Client.Stack.SendUDP(rig.GuestIP, 9001, uint16(20000+f), payload)
		eng.Run()
	}
	if gotRx != flows {
		t.Fatalf("client->guest delivered %d of %d", gotRx, flows)
	}
	if n := rig.System.Pool.Outstanding(); n != 0 {
		t.Fatalf("%d frame buffers leaked", n)
	}
}

// mqNetElapsed measures the simulated time a fixed forwarding workload
// takes on a rig with the given queue count: waves of small frames over
// varied source ports, each wave run to quiescence.
func mqNetElapsed(t *testing.T, queues int) sim.Time {
	t.Helper()
	rig, err := NewNetworkRigCfg(NetworkRigConfig{Kind: KindKite, Seed: 0x5ca1e, Queues: queues})
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	rig.Client.Stack.BindUDP(9000, func(p netstack.UDPPacket) { delivered++ })
	payload := pattern(128)
	eng := rig.System.Eng
	send := func(i int) {
		rig.Guest.Stack.SendUDP(rig.ClientIP, 9000, uint16(9001+i%64), payload)
	}
	for i := 0; i < 256; i++ { // warm pools, slots, and grant caches
		send(i)
		eng.Run()
	}
	delivered = 0
	const waves, perWave = 8, 512
	start := eng.Now()
	for w := 0; w < waves; w++ {
		for i := 0; i < perWave; i++ {
			send(i)
		}
		eng.Run()
	}
	if delivered != waves*perWave {
		t.Fatalf("queues=%d: delivered %d of %d", queues, delivered, waves*perWave)
	}
	return eng.Now() - start
}

// TestNetMQScaling asserts the tentpole speedup: with 4 queues and 4
// driver-domain vCPUs the forwarding workload completes at least 2.5x
// faster (in simulated time) than single-queue, because the per-queue
// pushers burn their per-frame CPU cost in parallel.
func TestNetMQScaling(t *testing.T) {
	e1 := mqNetElapsed(t, 1)
	e4 := mqNetElapsed(t, 4)
	ratio := float64(e1) / float64(e4)
	t.Logf("net: 1 queue %v, 4 queues %v, speedup %.2fx", e1, e4, ratio)
	if ratio < 2.5 {
		t.Fatalf("4-queue speedup %.2fx, want >= 2.5x", ratio)
	}
}

// TestBlkMQNegotiationAndIntegrity brings up a 4-queue vbd, writes a
// buffer spanning several 512 KiB stripes, reads it back, and checks the
// data survived the striping round trip and that every queue served ring
// requests.
func TestBlkMQNegotiationAndIntegrity(t *testing.T) {
	rig, err := NewStorageRig(StorageRigConfig{
		Kind: KindKite, Seed: 0x3b9, DiskBytes: 1 << 30, Queues: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := rig.Guest.Disk.NumQueues(); n != 4 {
		t.Fatalf("frontend negotiated %d queues, want 4", n)
	}
	insts := rig.SD.Driver.Instances()
	if len(insts) != 1 {
		t.Fatalf("got %d instances, want 1", len(insts))
	}
	inst := insts[0]
	if n := inst.NumQueues(); n != 4 {
		t.Fatalf("backend negotiated %d queues, want 4", n)
	}

	// 3 MiB starting mid-stripe: covers six full stripes plus ragged ends,
	// so every queue sees requests and chunks split at stripe boundaries.
	const total = 3 << 20
	startSector := int64(512) // half a stripe in
	payload := patternSeed(total, 0x5a)
	eng := rig.System.Eng
	done := false
	rig.Guest.Disk.WriteSectors(startSector, payload, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		done = true
	})
	eng.Run()
	if !done {
		t.Fatal("striped write never completed")
	}
	done = false
	rig.Guest.Disk.Flush(func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		done = true
	})
	eng.Run()
	if !done {
		t.Fatal("flush never completed")
	}
	var got []byte
	rig.Guest.Disk.ReadSectors(startSector, total, func(data []byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, data...)
	})
	eng.Run()
	if !bytes.Equal(got, payload) {
		t.Fatal("striped read-back does not match written data")
	}
	for i := 0; i < inst.NumQueues(); i++ {
		if qs := inst.QueueStats(i); qs.RingRequests == 0 {
			t.Errorf("vbd queue %d served no ring requests", i)
		}
	}
	if n := rig.System.BlkPool.Outstanding(); n != 0 {
		t.Fatalf("%d sector buffers leaked", n)
	}
}

// mqBlkElapsed measures the simulated time a fixed 4 KiB-write workload
// takes with the given queue count. The sectors walk the stripes round
// robin, so with N queues the per-submission-queue command overhead is
// paid on N NVMe queues (and N backend vCPUs) in parallel.
func mqBlkElapsed(t *testing.T, queues int) sim.Time {
	t.Helper()
	rig, err := NewStorageRig(StorageRigConfig{
		Kind: KindKite, Seed: 0xb5ca1e, DiskBytes: 1 << 30, Queues: queues,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := rig.System.Eng
	const ops = 512
	const ioBytes = 4 << 10
	payload := patternSeed(ioBytes, 0x17)
	// Warm pools, grants, and the sparse store over the sectors we will
	// time (one op per stripe slot).
	sectorOf := func(i int) int64 {
		return int64(i%4)*1024 + int64(i/4)*(ioBytes/512)
	}
	for i := 0; i < ops; i++ {
		ok := false
		rig.Guest.Disk.WriteSectors(sectorOf(i), payload, func(err error) { ok = err == nil })
		eng.Run()
		if !ok {
			t.Fatalf("warmup write %d failed", i)
		}
	}
	completed := 0
	start := eng.Now()
	for i := 0; i < ops; i++ {
		rig.Guest.Disk.WriteSectors(sectorOf(i), payload, func(err error) {
			if err != nil {
				t.Fatal(err)
			}
			completed++
		})
	}
	eng.Run()
	if completed != ops {
		t.Fatalf("queues=%d: completed %d of %d", queues, completed, ops)
	}
	return eng.Now() - start
}

// TestBlkMQScaling asserts the storage speedup: 4 hardware queues finish
// the same deep 4 KiB workload at least 2x faster than one queue.
func TestBlkMQScaling(t *testing.T) {
	e1 := mqBlkElapsed(t, 1)
	e4 := mqBlkElapsed(t, 4)
	ratio := float64(e1) / float64(e4)
	t.Logf("blk: 1 queue %v, 4 queues %v, speedup %.2fx", e1, e4, ratio)
	if ratio < 2.0 {
		t.Fatalf("4-queue speedup %.2fx, want >= 2x", ratio)
	}
}
