// Package xenbus implements the Xen device negotiation protocol on top of
// xenstore: the device directory layout libxl creates when a PV device is
// added to a guest, the XenbusState machine both ends walk
// (Initialising → InitWait → Initialised → Connected → Closing → Closed),
// and watch helpers for reacting to the other end's transitions.
//
// This is the layer Kite had to add to rumprun's HVM mode (Table 1's "HVM
// extension" row): without it, no backend can discover or pair with a
// frontend.
package xenbus

import (
	"fmt"

	"kite/internal/xenstore"
)

// DomID aliases the store's domain ID type.
type DomID = xenstore.DomID

// State is the XenbusState of one end of a device.
type State int

// XenbusState values, matching xen/io/xenbus.h.
const (
	StateUnknown      State = 0
	StateInitialising State = 1
	StateInitWait     State = 2
	StateInitialised  State = 3
	StateConnected    State = 4
	StateClosing      State = 5
	StateClosed       State = 6
)

var stateNames = map[State]string{
	StateUnknown:      "Unknown",
	StateInitialising: "Initialising",
	StateInitWait:     "InitWait",
	StateInitialised:  "Initialised",
	StateConnected:    "Connected",
	StateClosing:      "Closing",
	StateClosed:       "Closed",
}

func (s State) String() string {
	if n, ok := stateNames[s]; ok {
		return n
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// validNext encodes the legal transitions of the xenbus state machine.
// Any state may transition to Closing/Closed (device teardown or crash).
func validNext(from, to State) bool {
	if to == StateClosing || to == StateClosed {
		return true
	}
	switch from {
	case StateUnknown:
		return to == StateInitialising
	case StateInitialising:
		return to == StateInitWait || to == StateInitialised || to == StateConnected
	case StateInitWait:
		return to == StateInitialised || to == StateConnected
	case StateInitialised:
		return to == StateConnected
	case StateConnected:
		return false
	case StateClosing:
		return false
	case StateClosed:
		return to == StateInitialising // reconnect after close
	}
	return false
}

// FrontendPath returns the xenstore directory of a frontend device.
func FrontendPath(frontDom DomID, typ string, devid int) string {
	return fmt.Sprintf("/local/domain/%d/device/%s/%d", frontDom, typ, devid)
}

// BackendPath returns the xenstore directory of a backend device instance.
func BackendPath(backDom DomID, typ string, frontDom DomID, devid int) string {
	return fmt.Sprintf("/local/domain/%d/backend/%s/%d/%d", backDom, typ, frontDom, devid)
}

// BackendRoot returns the directory a backend watches for new frontends of
// one device type (§4.1's watch path).
func BackendRoot(backDom DomID, typ string) string {
	return fmt.Sprintf("/local/domain/%d/backend/%s", backDom, typ)
}

// Bus wraps a store with device-protocol helpers.
type Bus struct {
	store *xenstore.Store
}

// New returns a Bus over the given store.
func New(store *xenstore.Store) *Bus { return &Bus{store: store} }

// Store exposes the underlying xenstore.
func (b *Bus) Store() *xenstore.Store { return b.store }

// DeviceSpec describes one PV device connection to create.
type DeviceSpec struct {
	Type     string // "vif" or "vbd"
	FrontDom DomID
	BackDom  DomID
	DevID    int
	// Extra keys written into the frontend/backend directories at creation
	// (e.g. mac for vifs, virtual-device for vbds).
	FrontExtra map[string]string
	BackExtra  map[string]string
}

// AddDevice creates the xenstore skeleton for a device pair — what the
// toolstack (xl) does for `vif=[...]` / `disk=[...]` config stanzas — and
// returns the two device paths. Both ends start Initialising.
func (b *Bus) AddDevice(spec DeviceSpec) (frontPath, backPath string) {
	frontPath = FrontendPath(spec.FrontDom, spec.Type, spec.DevID)
	backPath = BackendPath(spec.BackDom, spec.Type, spec.FrontDom, spec.DevID)

	b.store.Writef(frontPath+"/"+xenstore.KeyBackend, "%s", backPath)
	b.store.Writef(frontPath+"/"+xenstore.KeyBackendID, "%d", spec.BackDom)
	b.store.Writef(frontPath+"/"+xenstore.KeyState, "%d", int(StateInitialising))
	for k, v := range spec.FrontExtra {
		b.store.Write(frontPath+"/"+k, v)
	}

	b.store.Writef(backPath+"/"+xenstore.KeyFrontend, "%s", frontPath)
	b.store.Writef(backPath+"/"+xenstore.KeyFrontendID, "%d", spec.FrontDom)
	b.store.Writef(backPath+"/"+xenstore.KeyOnline, "1")
	b.store.Writef(backPath+"/"+xenstore.KeyState, "%d", int(StateInitialising))
	for k, v := range spec.BackExtra {
		b.store.Write(backPath+"/"+k, v)
	}

	// Device directories belong to their respective domains.
	b.store.SetPerms(frontPath, spec.FrontDom, nil)
	b.store.SetPerms(backPath, spec.BackDom, nil)
	return frontPath, backPath
}

// RemoveDevice deletes both ends' directories.
func (b *Bus) RemoveDevice(spec DeviceSpec) {
	_ = b.store.Remove(FrontendPath(spec.FrontDom, spec.Type, spec.DevID))
	_ = b.store.Remove(BackendPath(spec.BackDom, spec.Type, spec.FrontDom, spec.DevID))
}

// State reads the state key of a device directory.
func (b *Bus) State(devPath string) State {
	v, ok := b.store.ReadInt(devPath + "/" + xenstore.KeyState)
	if !ok {
		return StateUnknown
	}
	return State(v)
}

// SwitchState transitions a device end, enforcing protocol legality.
func (b *Bus) SwitchState(devPath string, to State) error {
	from := b.State(devPath)
	if from == to {
		return nil
	}
	if !validNext(from, to) {
		return fmt.Errorf("xenbus: illegal transition %v -> %v at %s", from, to, devPath)
	}
	b.store.Writef(devPath+"/"+xenstore.KeyState, "%d", int(to))
	return nil
}

// OnStateChange invokes fn with the device's state whenever its directory
// changes (including the registration fire). Returns the watch for
// cancellation.
func (b *Bus) OnStateChange(devPath string, fn func(State)) *xenstore.Watch {
	return b.store.Watch(devPath+"/"+xenstore.KeyState, devPath, func(_, _ string) {
		fn(b.State(devPath))
	})
}

// OtherEnd resolves the opposite end's device path (via the backend or
// frontend pointer key).
func (b *Bus) OtherEnd(devPath string) (string, bool) {
	if v, ok := b.store.Read(devPath + "/" + xenstore.KeyBackend); ok {
		return v, true
	}
	if v, ok := b.store.Read(devPath + "/" + xenstore.KeyFrontend); ok {
		return v, true
	}
	return "", false
}

// QueuePath returns the per-queue subdirectory of a device directory
// ("<devPath>/queue-<q>").
func QueuePath(devPath string, q int) string {
	return fmt.Sprintf("%s/queue-%d", devPath, q)
}

// WriteNumQueues publishes the frontend's negotiated queue count.
func (b *Bus) WriteNumQueues(devPath string, n int) {
	b.store.Writef(devPath+"/"+xenstore.KeyMultiQueueNumQueues, "%d", n)
}

// ReadNumQueues reads a negotiated/advertised queue-count key from a device
// directory; absent (a pre-multi-queue peer) means 1.
func (b *Bus) ReadNumQueues(devPath, key string) int {
	n, ok := b.store.ReadInt(devPath + "/" + key)
	if !ok || n < 1 {
		return 1
	}
	return int(n)
}

// WriteFeature publishes a feature key (feature-X=1 style) in a device dir.
func (b *Bus) WriteFeature(devPath, name string, enabled bool) {
	v := "0"
	if enabled {
		v = "1"
	}
	b.store.Write(devPath+"/"+name, v)
}

// ReadFeature reads a feature key; absent means false.
func (b *Bus) ReadFeature(devPath, name string) bool {
	v, ok := b.store.ReadInt(devPath + "/" + name)
	return ok && v != 0
}
