package apps

import (
	"encoding/binary"
	"fmt"

	"kite/internal/bufpool"
	"kite/internal/netstack"
	"kite/internal/sim"
)

// RowSize matches sysbench's sbtest schema footprint (id INT, k INT,
// c CHAR(120), pad CHAR(60) plus row overhead).
const RowSize = 200

// SQLDB stands in for MySQL (Figs 10 and 13): tables of fixed-size rows
// addressed by primary key. In memory mode (Fig 10) all data is resident
// and queries are CPU + network bound; in disk mode (Fig 13) rows live on
// the paravirtual disk behind a buffer pool sized below the dataset, so
// queries miss to storage (§5.4: "total I/O size bigger than main
// memory").
type SQLDB struct {
	eng    *sim.Engine
	cpus   *sim.CPUPool
	tables int
	rows   int64

	// Disk mode: rows are stored at deterministic offsets in the pool's
	// backing device. Nil pool = memory mode.
	pool *bufpool.Pool

	// PerQuery and PerRow model the SQL layer (parse, plan, b-tree walk).
	PerQuery sim.Time
	PerRow   sim.Time

	queries, rowsRead uint64
}

// SQLConfig sizes the database.
type SQLConfig struct {
	Tables int
	Rows   int64 // per table
	Pool   *bufpool.Pool
}

// NewSQLDB creates a database. In disk mode the table data is laid out on
// the backing device but not pre-written: reads of unwritten rows return
// zeroes from the device, which is fine for timing-oriented workloads and
// avoids multi-GB setup transfers (integrity of the storage path is
// covered by dedicated tests).
func NewSQLDB(eng *sim.Engine, cpus *sim.CPUPool, cfg SQLConfig) (*SQLDB, error) {
	db := &SQLDB{
		eng: eng, cpus: cpus,
		tables: cfg.Tables, rows: cfg.Rows, pool: cfg.Pool,
		PerQuery: 9 * sim.Microsecond,
		PerRow:   350 * sim.Nanosecond,
	}
	if cfg.Tables <= 0 || cfg.Rows <= 0 {
		return nil, fmt.Errorf("apps: sql db needs tables and rows")
	}
	if db.pool != nil {
		need := db.offset(cfg.Tables-1, cfg.Rows-1) + RowSize
		if need > db.pool.SizeBytes() {
			return nil, fmt.Errorf("apps: dataset (%d MB) exceeds disk", need>>20)
		}
	}
	return db, nil
}

// DataBytes returns the dataset size.
func (db *SQLDB) DataBytes() int64 { return int64(db.tables) * db.rows * RowSize }

// Queries returns (queries executed, rows examined).
func (db *SQLDB) Queries() (q, rows uint64) { return db.queries, db.rowsRead }

func (db *SQLDB) offset(table int, row int64) int64 {
	return (int64(table)*db.rows + row) * RowSize
}

// PointSelect executes SELECT ... WHERE id = ?; cb fires with the row.
func (db *SQLDB) PointSelect(table int, row int64, cb func(row []byte, err error)) {
	db.queries++
	db.rowsRead++
	db.cpus.Charge(db.PerQuery + db.PerRow)
	if db.pool == nil {
		// Memory mode: synthesize the row.
		out := make([]byte, RowSize)
		binary.LittleEndian.PutUint64(out, uint64(row))
		db.eng.After(0, func() { cb(out, nil) })
		return
	}
	db.pool.Read(db.offset(table, row), RowSize, cb)
}

// RangeSelect executes SELECT ... WHERE id BETWEEN ? AND ?+n (sysbench's
// range queries examine n rows).
func (db *SQLDB) RangeSelect(table int, row int64, n int, cb func(rows []byte, err error)) {
	db.queries++
	db.rowsRead += uint64(n)
	db.cpus.Charge(db.PerQuery + sim.Time(n)*db.PerRow)
	if int64(n) > db.rows-row {
		n = int(db.rows - row)
	}
	if db.pool == nil {
		db.eng.After(0, func() { cb(make([]byte, n*RowSize), nil) })
		return
	}
	db.pool.Read(db.offset(table, row), n*RowSize, cb)
}

// --- Wire protocol (for the network-domain experiment, Fig 10) ---
//
//	P <table> <row>\n            point select
//	R <table> <row> <count>\n    range select
//
// Responses: "D <len>\n<len bytes>" or "E <msg>\n".

// SQLServer exposes a SQLDB over the network.
type SQLServer struct {
	db    *SQLDB
	stack *netstack.Stack
}

// NewSQLServer listens on port and serves queries against db.
func NewSQLServer(stack *netstack.Stack, port uint16, db *SQLDB) (*SQLServer, error) {
	s := &SQLServer{db: db, stack: stack}
	if err := stack.Listen(port, s.accept); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *SQLServer) accept(c *netstack.Conn) {
	var buf []byte
	c.OnData(func(data []byte) {
		buf = append(buf, data...)
		for {
			nl := -1
			for i, b := range buf {
				if b == '\n' {
					nl = i
					break
				}
			}
			if nl < 0 {
				return
			}
			line := string(buf[:nl])
			buf = buf[nl+1:]
			s.handle(c, line)
		}
	})
}

func (s *SQLServer) handle(c *netstack.Conn, line string) {
	var table int
	var row int64
	var count int
	reply := func(rows []byte, err error) {
		if err != nil {
			c.Send([]byte(fmt.Sprintf("E %v\n", err)))
			return
		}
		out := make([]byte, 0, len(rows)+16)
		out = append(out, fmt.Sprintf("D %d\n", len(rows))...)
		out = append(out, rows...)
		c.Send(out)
	}
	if _, err := fmt.Sscanf(line, "P %d %d", &table, &row); err == nil {
		s.db.PointSelect(table, row, reply)
		return
	}
	if _, err := fmt.Sscanf(line, "R %d %d %d", &table, &row, &count); err == nil {
		s.db.RangeSelect(table, row, count, reply)
		return
	}
	c.Send([]byte("E bad query\n"))
}
