package core

import "testing"

// BenchmarkBlockPath measures the wall-clock cost of simulating one 256 KiB
// write plus one 256 KiB read through the full PV storage pipeline
// (blkfront split/indirect requests, blkif ring, blkback batcher, NVMe
// device model), reported as simulated bytes per wall second. The region is
// rewritten in place so the device's sparse store is warm and the numbers
// capture the steady-state data path. `make bench` snapshots this into
// BENCH_blk.json.
func BenchmarkBlockPath(b *testing.B) {
	rig, err := NewStorageRig(StorageRigConfig{Kind: KindKite, Seed: 0xb10c, DiskBytes: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	const ioBytes = 256 << 10
	payload := pattern(ioBytes)
	eng := rig.System.Eng
	completed := 0
	wcb := func(err error) {
		if err != nil {
			b.Fatal(err)
		}
	}
	rcb := func(data []byte, err error) {
		if err != nil {
			b.Fatal(err)
		}
		completed++
	}
	iter := func() {
		rig.Guest.Disk.WriteSectors(0, payload, wcb)
		eng.Run()
		rig.Guest.Disk.ReadSectors(0, ioBytes, rcb)
		eng.Run()
	}
	for i := 0; i < 50; i++ { // warm pools, persistent grants, NVMe store
		iter()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		iter()
	}
	b.StopTimer()
	if completed == 0 {
		b.Fatal("no reads completed")
	}
	b.ReportMetric(float64(b.N)*2*ioBytes/b.Elapsed().Seconds(), "bytes/sec")
}
