package xenstore

import "fmt"

// Txn is an optimistic transaction (XS_TRANSACTION_START/END). Reads and
// writes are buffered; Commit re-validates that every path the transaction
// read or wrote is unchanged since Begin and applies the writes atomically,
// or fails so the caller can retry — the same protocol xenstored clients
// implement.
type Txn struct {
	store    *Store
	snapshot uint64
	reads    map[string]uint64  // path -> version seen (0 = absent)
	writes   map[string]*string // nil value = delete
	order    []string
	done     bool
}

// Begin starts a transaction.
func (s *Store) Begin() *Txn {
	return &Txn{
		store:    s,
		snapshot: s.version,
		reads:    make(map[string]uint64),
		writes:   make(map[string]*string),
	}
}

func (t *Txn) checkLive() {
	if t.done {
		panic("xenstore: use of finished transaction")
	}
}

// Read reads through the transaction, observing its own buffered writes.
func (t *Txn) Read(path string) (string, bool) {
	t.checkLive()
	path = normalize(path)
	if v, ok := t.writes[path]; ok {
		if v == nil {
			return "", false
		}
		return *v, true
	}
	n := t.store.lookup(path)
	if n == nil || !n.hasValue {
		t.reads[path] = 0
		return "", false
	}
	t.reads[path] = n.version
	return n.value, true
}

// Write buffers a write.
func (t *Txn) Write(path, value string) {
	t.checkLive()
	path = normalize(path)
	if _, seen := t.writes[path]; !seen {
		t.order = append(t.order, path)
	}
	v := value
	t.writes[path] = &v
}

// Remove buffers a delete.
func (t *Txn) Remove(path string) {
	t.checkLive()
	path = normalize(path)
	if _, seen := t.writes[path]; !seen {
		t.order = append(t.order, path)
	}
	t.writes[path] = nil
}

// Commit validates and applies the transaction. On conflict it returns an
// error and applies nothing; the transaction is finished either way.
func (t *Txn) Commit() error {
	t.checkLive()
	t.done = true
	for path, sawVersion := range t.reads {
		n := t.store.lookup(path)
		var cur uint64
		if n != nil && n.hasValue {
			cur = n.version
		}
		if cur != sawVersion {
			return fmt.Errorf("xenstore: transaction conflict on %s", path)
		}
	}
	// Paths written must not have changed since the snapshot either.
	for path := range t.writes {
		if n := t.store.lookup(path); n != nil && n.version > t.snapshot {
			return fmt.Errorf("xenstore: transaction conflict on %s", path)
		}
	}
	for _, path := range t.order {
		if v := t.writes[path]; v == nil {
			// Deleting a path that was never created is fine inside a txn.
			if t.store.Exists(path) {
				_ = t.store.Remove(path)
			}
		} else {
			t.store.Write(path, *v)
		}
	}
	return nil
}

// Abort discards the transaction.
func (t *Txn) Abort() {
	t.checkLive()
	t.done = true
}
