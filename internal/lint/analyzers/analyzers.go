// Package analyzers holds the kitelint checks: nine analyzers that turn
// the repository's runtime-tested invariants (zero-alloc hot paths, pool
// refcount discipline, deterministic simulation, registry-only xenstore
// keys, non-blocking event handlers, shard confinement, barrier purity,
// intrusive-ring discipline, determinism scope) into compile-time
// guarantees. See DESIGN.md §11 and §15 for what each one proves and how
// it maps to the paper's TCB argument.
package analyzers

import "kite/internal/lint/analysis"

// All returns every analyzer in the suite, in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{Hotpath, Poolref, Simdet, Xskeys, Evblock, Shardsafe, Relpure, Ringlink, Atomicscope}
}
