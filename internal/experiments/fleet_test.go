package experiments

import "testing"

// TestFleetSummary checks the fleet workload end to end at a small
// scale: traffic and storage totals are nonzero, nothing drops, and the
// DRR lanes hold every well-behaved tenant at its full share under a
// 10x adversary.
func TestFleetSummary(t *testing.T) {
	f := FleetSummary(Quick(), 16, 2)
	t.Log("\n" + f.String() + "\n" + f.ShardLine())
	if f.TenantTxFrames == 0 || f.TenantBlkBytes == 0 {
		t.Fatalf("empty fleet summary: %+v", f)
	}
	if f.Drops != 0 {
		t.Fatalf("fleet dropped %d frames", f.Drops)
	}
	if f.MinShare < 0.9 {
		t.Fatalf("fairness min share %.3f < 0.9", f.MinShare)
	}
	if f.Rounds == 0 || f.DemuxScans == 0 {
		t.Fatalf("lanes idle: %d rounds, %d demux scans", f.Rounds, f.DemuxScans)
	}
}

// TestFleetSummaryDeterministicAcrossCores checks every printed line —
// totals, checksums, fairness, lane and cluster counters — is
// byte-identical at any cluster worker count.
func TestFleetSummaryDeterministicAcrossCores(t *testing.T) {
	if testing.Short() {
		t.Skip("two full fleet runs")
	}
	run := func(cores int) string {
		f := FleetSummary(Quick(), 24, cores)
		return f.String() + "\n" + f.ShardLine()
	}
	s1, s4 := run(1), run(4)
	if s1 != s4 {
		t.Fatalf("fleet summary differs across cores:\n-- cores=1 --\n%s\n-- cores=4 --\n%s", s1, s4)
	}
}
