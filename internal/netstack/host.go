package netstack

import (
	"kite/internal/framepool"
	"kite/internal/netpkt"
	"kite/internal/nic"
	"kite/internal/sim"
)

// Host is a bare-metal machine endpoint: CPUs, a physical NIC, and a
// stack. The paper's client load generator (Core i5-6600K, Table 2) is a
// Host; so is any machine-level endpoint in unit tests.
type Host struct {
	Name  string
	CPUs  *sim.CPUPool
	NIC   *nic.NIC
	Stack *Stack
}

// HostConfig describes a Host.
type HostConfig struct {
	Name  string
	CPUs  int
	IP    netpkt.IP
	MAC   netpkt.MAC
	BDF   string
	Costs Costs
	Seed  uint64
	// Pool supplies the stack's frame buffers (nil for a private pool).
	Pool *framepool.Pool
}

// NewHost builds a host around an (unconnected) NIC; wire it to a peer
// with nic.Connect.
func NewHost(eng *sim.Engine, cfg HostConfig) *Host {
	cpus := sim.NewCPUPool(eng, cfg.Name, cfg.CPUs)
	n := nic.New(eng, cfg.Name+"/eth0", cfg.MAC, cfg.BDF)
	st := New(eng, Config{
		Name:  cfg.Name,
		CPUs:  cpus,
		Iface: n,
		IP:    cfg.IP,
		Costs: cfg.Costs,
		Seed:  cfg.Seed,
		Pool:  cfg.Pool,
	})
	return &Host{Name: cfg.Name, CPUs: cpus, NIC: n, Stack: st}
}
