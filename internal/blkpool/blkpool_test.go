package blkpool

import "testing"

func TestClassRounding(t *testing.T) {
	p := New()
	cases := []struct{ n, wantCap int }{
		{512, 4096},
		{4096, 4096},
		{4608, 8192},
		{44 << 10, 64 << 10},
		{1 << 20, 1 << 20},
		{4 << 20, 4 << 20},
	}
	for _, c := range cases {
		b := p.Get(c.n)
		if b.Cap() != c.wantCap {
			t.Errorf("Get(%d): cap = %d, want %d", c.n, b.Cap(), c.wantCap)
		}
		if b.Len() != c.n {
			t.Errorf("Get(%d): len = %d", c.n, b.Len())
		}
		b.Release()
	}
	if p.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", p.Outstanding())
	}
}

func TestLIFOReuseIsDeterministic(t *testing.T) {
	p := New()
	a := p.Get(4096)
	a.Release()
	b := p.Get(4096)
	if a != b {
		t.Fatal("freed buffer not reused LIFO")
	}
	if p.Fresh() != 1 || p.Gets() != 2 {
		t.Fatalf("fresh=%d gets=%d, want 1/2", p.Fresh(), p.Gets())
	}
	b.Release()
}

func TestSizeClassesDoNotMix(t *testing.T) {
	p := New()
	small := p.Get(4096)
	small.Release()
	big := p.Get(64 << 10)
	if big == small {
		t.Fatal("64 KiB request served from the 4 KiB class")
	}
	big.Release()
	if got := p.Get(64 << 10); got != big {
		t.Fatal("64 KiB class did not recycle its own buffer")
	} else {
		got.Release()
	}
}

func TestRefcounting(t *testing.T) {
	p := New()
	b := p.Get(4096)
	b.Retain()
	b.Release()
	if p.Outstanding() != 1 {
		t.Fatal("buffer returned while a reference remained")
	}
	b.Release()
	if p.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", p.Outstanding())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("release below zero did not panic")
		}
	}()
	b.Release()
}

func TestOversizedFallsBackToOneOff(t *testing.T) {
	p := New()
	b := p.Get(8 << 20)
	if b.Cap() != 8<<20 {
		t.Fatalf("cap = %d", b.Cap())
	}
	b.Release()
	if p.Outstanding() != 0 {
		t.Fatal("oversized release not accounted")
	}
	if c := p.Get(8 << 20); c == b {
		t.Fatal("oversized buffer must not be pooled")
	} else {
		c.Release()
	}
}

func TestBadSizePanics(t *testing.T) {
	p := New()
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned Get did not panic")
		}
	}()
	p.Get(100)
}

func TestArenaPartitioning(t *testing.T) {
	p := New()
	a0, a1 := p.NewArena(), p.NewArena()
	b0, b1 := a0.Get(4096), a1.Get(4096)
	if p.Outstanding() != 2 {
		t.Fatalf("Outstanding = %d, want 2 (arena gets must hit parent accounting)", p.Outstanding())
	}
	b0.Release()
	b1.Release()
	if p.Outstanding() != 0 {
		t.Fatalf("Outstanding = %d after arena releases, want 0", p.Outstanding())
	}
	// Each buffer returned to its own arena, not the shared lists.
	if got := a0.Get(4096); got != b0 {
		t.Fatal("arena 0 did not recycle its own buffer")
	} else {
		got.Release()
	}
	if got := a1.Get(4096); got != b1 {
		t.Fatal("arena 1 did not recycle its own buffer")
	} else {
		got.Release()
	}
	if got := p.Get(4096); got == b0 || got == b1 {
		t.Fatal("shared pool handed out an arena-owned buffer")
	} else {
		got.Release()
	}
}

func TestArenaOversizedFallsBack(t *testing.T) {
	p := New()
	a := p.NewArena()
	b := a.Get(8 << 20)
	b.Release()
	if p.Outstanding() != 0 {
		t.Fatal("oversized arena release not accounted")
	}
	if c := a.Get(8 << 20); c == b {
		t.Fatal("oversized arena buffer must not be pooled")
	} else {
		c.Release()
	}
}
