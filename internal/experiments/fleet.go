package experiments

import (
	"fmt"

	"kite/internal/core"
	"kite/internal/netpkt"
	"kite/internal/netstack"
)

// FleetStats summarizes the fleet workload behind kitebench's -guests
// flag: one Kite network domain and one Kite storage domain serving N
// single-queue tenants through shared DRR service lanes. Every printed
// figure is a timeline fact — counts, checksums over per-tenant counters
// in attach order, lane/demux totals — so the whole summary is
// byte-identical for any -parallel and -cores choice.
type FleetStats struct {
	Guests int
	Lanes  int

	// Delivery phase: every tenant exchanges datagrams with the client.
	TenantTxFrames uint64 // netback per-tenant Tx totals (guest -> world)
	TenantTxBytes  uint64
	TenantRxFrames uint64 // world -> guest
	Drops          uint64 // netback rx-queue + no-buffer drops, all tenants
	NetChecksum    uint64 // order-invariant sum of per-datagram FNV-1a hashes

	// Storage phase: every tenant round-trips 4 KiB ops through its lane.
	TenantBlkBytes uint64 // blkback per-tenant payload totals
	BlkChecksum    uint64 // FNV-1a over data read back, summed over tenants

	// TenantChecksum folds every tenant's (tx, rx, drops, blk bytes)
	// counters in attach order — one line that proves the whole
	// per-tenant table is identical across runs.
	TenantChecksum uint64

	// Fairness phase: tenant 0 offers 10x the load of everyone else;
	// MinShare is the smallest well-behaved tenant's delivered fraction
	// of its own offered burst at the moment the adversary has been
	// served twice that burst. DRR clamps the adversary to one quantum
	// per round, so every well-behaved tenant completes first and
	// MinShare sits at 1.0; FIFO service would drain the adversary's
	// backlog ahead of its lane-mates and starve them toward 0.
	MinShare float64

	// Lane and demux behavior (network side).
	Rounds     uint64 // DRR rounds across lanes
	DemuxScans uint64
	DemuxMarks uint64

	// Cluster counters (timeline facts, identical at any -cores).
	Shards  int
	Windows uint64
	Posts   uint64
}

// String renders the summary lines exactly as kitebench prints them.
func (f FleetStats) String() string {
	return fmt.Sprintf(
		"kitebench: fleet %d guests / %d lanes: tx %d frames / %d bytes, rx %d frames, drops %d, net checksum %016x\n"+
			"kitebench: fleet blk %d bytes, checksum %016x, tenant-table checksum %016x\n"+
			"kitebench: fleet fairness min-share %.3f (one tenant at 10x), %d rounds, demux %d scans / %d marks",
		f.Guests, f.Lanes, f.TenantTxFrames, f.TenantTxBytes, f.TenantRxFrames,
		f.Drops, f.NetChecksum,
		f.TenantBlkBytes, f.BlkChecksum, f.TenantChecksum,
		f.MinShare, f.Rounds, f.DemuxScans, f.DemuxMarks)
}

// ShardLine renders the cluster counters (vary with the lane count, never
// with -cores or GOMAXPROCS).
func (f FleetStats) ShardLine() string {
	return fmt.Sprintf("kitebench: fleet shards %d, %d windows, %d cross-shard posts",
		f.Shards, f.Windows, f.Posts)
}

// fleetLanes is the service-lane count the kitebench fleet runs with.
const fleetLanes = 4

// fleetWave is how many tenants exchange datagrams concurrently during
// the delivery phase — small enough that no queue on the shared client
// path can drop.
const fleetWave = 32

// FleetSummary drives the fleet workload: guests tenants on fleetLanes
// service lanes, cores cluster workers.
//
// Delivery phase: tenants send one tagged datagram to the client and get
// one back, in waves of fleetWave so nothing drops; totals and checksums
// are exact. Storage phase: every tenant writes and reads back one 4 KiB
// block through its vbd lane, verified by checksum. Fairness phase:
// tenant 0 bursts 10x the frames of every other tenant, and per-tenant
// delivery counts are snapshotted when half the offered frames are
// through — the DRR lanes keep every well-behaved tenant at its fair
// share while the adversary is clamped to its own.
func FleetSummary(s Scale, guests, cores int) FleetStats {
	if guests <= 0 {
		guests = 64
	}
	var f FleetStats
	f.Guests, f.Lanes = guests, fleetLanes

	rig, err := core.NewFleetRig(core.FleetConfig{
		Guests: guests, Lanes: fleetLanes, Seed: 0xf1ee7,
		Storage: true, DiskBytes: 4 << 20,
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: fleet rig: %v", err))
	}
	sys := rig.Testbed.System
	sys.Cluster.SetWorkers(cores)
	f.Shards = sys.Cluster.Shards()

	// --- Delivery phase ---
	waves := s.PingCount
	if waves > 4 {
		waves = 4 // per-tenant repetition adds cost, not information
	}
	gotClient := make([]int, guests)
	ipIndex := make(map[netpkt.IP]int, guests)
	for i := 0; i < guests; i++ {
		ipIndex[rig.GuestIPOf(i)] = i
	}
	// Fairness-phase snapshot state: armed once the overload burst is
	// offered, the snapshot is taken inside the delivery callback the
	// moment the adversary's deliveries reach twice a well-behaved
	// burst — an exact event boundary, so it is identical at any worker
	// count.
	var fairArmed bool
	var fairAdv int
	var fairSnap []int
	rig.Client.Stack.BindUDP(9000, func(p netstack.UDPPacket) {
		i, ok := ipIndex[p.Src]
		if !ok {
			return
		}
		gotClient[i]++
		f.NetChecksum += fnv1a(uint64(i)<<32|uint64(p.SrcPort), p.Data)
		if fairArmed && i == 0 {
			fairAdv++
			if fairSnap == nil && fairAdv >= 2*fairBurst {
				fairSnap = append([]int(nil), gotClient...)
			}
		}
	})
	gotGuest := make([]int, guests)
	for i, g := range rig.Guests {
		i := i
		g.Stack.BindUDP(9001, func(p netstack.UDPPacket) {
			gotGuest[i]++
			f.NetChecksum += fnv1a(uint64(i)<<48, p.Data)
		})
	}
	payload := make([]byte, 256)
	for w := 0; w < waves; w++ {
		for lo := 0; lo < guests; lo += fleetWave {
			hi := lo + fleetWave
			if hi > guests {
				hi = guests
			}
			for i := lo; i < hi; i++ {
				for j := range payload {
					payload[j] = byte(i*31 + j*13 + w*7)
				}
				rig.Guests[i].Stack.SendUDP(rig.ClientIP, 9000, uint16(10000+w), payload)
			}
			drive(sys, func() bool {
				for i := lo; i < hi; i++ {
					if gotClient[i] < w+1 {
						return false
					}
				}
				return true
			}, 20_000_000)
			for i := lo; i < hi; i++ {
				for j := range payload {
					payload[j] = byte(i*31 + j*13 + w*7)
				}
				rig.Client.Stack.SendUDP(rig.GuestIPOf(i), 9001, uint16(20000+w), payload)
			}
			drive(sys, func() bool {
				for i := lo; i < hi; i++ {
					if gotGuest[i] < w+1 {
						return false
					}
				}
				return true
			}, 20_000_000)
		}
	}

	// --- Storage phase ---
	buf := make([]byte, 4096)
	for lo := 0; lo < guests; lo += fleetWave {
		hi := lo + fleetWave
		if hi > guests {
			hi = guests
		}
		okRead := 0
		for i := lo; i < hi; i++ {
			for j := range buf {
				buf[j] = byte(i*29 + j*3)
			}
			i, g := i, rig.Guests[i]
			g.Disk.WriteSectors(0, buf, func(err error) {
				if err != nil {
					return
				}
				g.Disk.ReadSectors(0, 4096, func(data []byte, err error) {
					if err != nil {
						return
					}
					f.BlkChecksum += fnv1a(uint64(i), data)
					okRead++
				})
			})
		}
		want := hi - lo
		drive(sys, func() bool { return okRead == want }, 20_000_000)
	}

	// --- Fairness phase ---
	// Tenant 0 bursts 10x everyone else's frames; the DRR lanes clamp it
	// to one quantum per round, so by the time it has been served two
	// bursts' worth (the snapshot taken in the delivery callback above)
	// every well-behaved tenant's whole burst is through. The backlog
	// then drains to quiesce through Cluster.Run — full parallel windows
	// when cores > 1, same timeline either way — so the per-tenant
	// counters below are end-state facts.
	base := append([]int(nil), gotClient...)
	fairArmed = true
	for i, g := range rig.Guests {
		n := fairBurst
		if i == 0 {
			n = 10 * fairBurst
		}
		for k := 0; k < n; k++ {
			for j := range payload {
				payload[j] = byte(i*31 + k*5 + j)
			}
			g.Stack.SendUDP(rig.ClientIP, 9000, uint16(30000+k%1000), payload)
		}
	}
	sys.Cluster.Run()
	f.MinShare = fleetMinShare(fairSnap, base)

	// --- Per-tenant table ---
	var tag uint64
	for _, v := range rig.ND.Driver.VIFs() {
		st := v.Stats()
		f.TenantTxFrames += st.TxFrames
		f.TenantTxBytes += st.TxBytes
		f.TenantRxFrames += st.RxFrames
		f.Drops += st.RxQueueDrops + st.RxNoBufDrops
		tag = tag*1099511628211 + st.TxFrames
		tag = tag*1099511628211 + st.RxFrames
		tag = tag*1099511628211 + st.RxQueueDrops + st.RxNoBufDrops
	}
	for _, inst := range rig.SD.Driver.Instances() {
		b := inst.Stats().Bytes
		f.TenantBlkBytes += b
		tag = tag*1099511628211 + b
	}
	f.TenantChecksum = tag
	for _, lane := range rig.ND.Driver.Lanes() {
		f.Rounds += lane.Rounds()
		scans, marks := lane.DemuxStats()
		f.DemuxScans += scans
		f.DemuxMarks += marks
	}
	f.Windows = sys.Cluster.Windows()
	f.Posts = sys.Cluster.Posted()
	return f
}

// fairBurst is the per-tenant frame budget of the fairness phase; the
// adversary (tenant 0) offers ten times as much — enough backlog that
// every lane runs multiple DRR rounds before draining.
const fairBurst = 64

// fleetMinShare computes the fairness figure from the snapshot taken
// when the adversary (tenant 0, excluded here) has been served twice a
// well-behaved burst: the minimum well-behaved tenant's delivered count
// (over its baseline) as a fraction of its own offered burst. DRR keeps
// this at 1.0 — the adversary cannot get a full extra quantum ahead of
// any lane-mate — while FIFO service would leave lane-mates near 0.
func fleetMinShare(snap, base []int) float64 {
	if snap == nil {
		return 0
	}
	min := -1
	for i := 1; i < len(snap); i++ {
		c := snap[i] - base[i]
		if min < 0 || c < min {
			min = c
		}
	}
	return float64(min) / float64(fairBurst)
}
