// Package nat implements network address translation for the network
// driver domain — the alternative to bridging that §3.1 lists among the
// techniques driver domains need ("bridging, routing, and network address
// translation (NAT)"), ported in spirit from NetBSD's npf/ipnat the way
// Kite ports ifconfig/brconfig.
//
// The translator sits between the physical interface (outside) and the
// guest-facing VIFs (inside): outbound flows get their source rewritten to
// the gateway address with an allocated port; inbound packets are matched
// against the flow table (plus static port forwards) and rewritten back.
// TCP, UDP, and ICMP echo are supported — enough for every workload in the
// evaluation.
package nat

import (
	"fmt"

	"kite/internal/netpkt"
	"kite/internal/sim"
)

// proto keys for the flow table.
type flowKey struct {
	proto   uint8
	guestIP netpkt.IP
	guestPt uint16 // ICMP: echo ID
}

type flow struct {
	key     flowKey
	extPort uint16 // allocated on the gateway (ICMP: rewritten echo ID)
	lastUse sim.Time
}

// Stats counts translator activity.
type Stats struct {
	Outbound   uint64
	Inbound    uint64
	Dropped    uint64 // no matching flow or forward
	FlowsAlloc uint64
}

// Translator is one NAT instance owned by the network driver domain.
type Translator struct {
	eng  *sim.Engine
	cpus *sim.CPUPool

	// Gateway is the external address owned by the driver domain.
	Gateway netpkt.IP
	// PerPacketCost models the translation work.
	PerPacketCost sim.Time

	flows    map[flowKey]*flow
	reverse  map[uint16]*flow // extPort -> flow (per proto spaces merged)
	forwards map[uint16]hostPort
	nextPort uint16

	stats Stats
}

type hostPort struct {
	ip   netpkt.IP
	port uint16
}

// New creates a translator for the given gateway address.
func New(eng *sim.Engine, cpus *sim.CPUPool, gateway netpkt.IP) *Translator {
	return &Translator{
		eng: eng, cpus: cpus, Gateway: gateway,
		PerPacketCost: 350 * sim.Nanosecond,
		flows:         make(map[flowKey]*flow),
		reverse:       make(map[uint16]*flow),
		forwards:      make(map[uint16]hostPort),
		nextPort:      20000,
	}
}

// Stats returns a snapshot of the counters.
func (t *Translator) Stats() Stats { return t.stats }

// Flows returns the number of active translations.
func (t *Translator) Flows() int { return len(t.flows) }

// AddForward installs a static inbound mapping (gateway:extPort ->
// guest:guestPort), the rdr rule servers behind NAT need.
func (t *Translator) AddForward(extPort uint16, guest netpkt.IP, guestPort uint16) error {
	if _, taken := t.forwards[extPort]; taken {
		return fmt.Errorf("nat: external port %d already forwarded", extPort)
	}
	t.forwards[extPort] = hostPort{ip: guest, port: guestPort}
	return nil
}

func (t *Translator) allocPort() uint16 {
	for {
		t.nextPort++
		if t.nextPort < 20000 {
			t.nextPort = 20000
		}
		if _, taken := t.reverse[t.nextPort]; !taken {
			if _, fwd := t.forwards[t.nextPort]; !fwd {
				return t.nextPort
			}
		}
	}
}

// flowFor finds or creates the translation for an outbound packet. A
// guest endpoint that is the target of a static forward keeps the
// forward's external port, so replies of redirected connections translate
// back symmetrically.
func (t *Translator) flowFor(proto uint8, guest netpkt.IP, guestPort uint16) *flow {
	key := flowKey{proto: proto, guestIP: guest, guestPt: guestPort}
	if f := t.flows[key]; f != nil {
		f.lastUse = t.eng.Now()
		return f
	}
	ext := uint16(0)
	for extPort, fwd := range t.forwards {
		if fwd.ip == guest && fwd.port == guestPort {
			ext = extPort
			break
		}
	}
	if ext == 0 {
		ext = t.allocPort()
	}
	f := &flow{key: key, extPort: ext, lastUse: t.eng.Now()}
	t.flows[key] = f
	t.reverse[f.extPort] = f
	t.stats.FlowsAlloc++
	return f
}

// TranslateOutbound rewrites a guest-originated IPv4 packet (raw, starting
// at the IP header) so it appears to come from the gateway. It returns the
// rewritten packet or nil if the packet cannot be translated.
func (t *Translator) TranslateOutbound(pkt []byte) []byte {
	t.cpus.Charge(t.PerPacketCost)
	h, payload, err := netpkt.ParseIPv4(pkt)
	if err != nil {
		t.stats.Dropped++
		return nil
	}
	switch h.Proto {
	case netpkt.ProtoTCP:
		th, body, err := netpkt.ParseTCP(payload)
		if err != nil {
			t.stats.Dropped++
			return nil
		}
		f := t.flowFor(h.Proto, h.Src, th.SrcPort)
		th.SrcPort = f.extPort
		return t.rebuild(h, th.Marshal(body))
	case netpkt.ProtoUDP:
		uh, body, err := netpkt.ParseUDP(payload)
		if err != nil {
			t.stats.Dropped++
			return nil
		}
		f := t.flowFor(h.Proto, h.Src, uh.SrcPort)
		uh.SrcPort = f.extPort
		return t.rebuild(h, uh.Marshal(body))
	case netpkt.ProtoICMP:
		eh, body, err := netpkt.ParseICMPEcho(payload)
		if err != nil || eh.Type != netpkt.ICMPEchoRequest {
			t.stats.Dropped++
			return nil
		}
		f := t.flowFor(h.Proto, h.Src, eh.ID)
		eh.ID = f.extPort
		return t.rebuild(h, eh.Marshal(body))
	default:
		t.stats.Dropped++
		return nil
	}
}

// TranslateInbound rewrites a packet arriving at the gateway back to the
// owning guest. Returns the rewritten packet and the guest address, or nil
// if no flow or forward matches (the packet is dropped — NAT's implicit
// firewall).
func (t *Translator) TranslateInbound(pkt []byte) ([]byte, netpkt.IP) {
	t.cpus.Charge(t.PerPacketCost)
	h, payload, err := netpkt.ParseIPv4(pkt)
	if err != nil || h.Dst != t.Gateway {
		t.stats.Dropped++
		return nil, netpkt.IP{}
	}
	switch h.Proto {
	case netpkt.ProtoTCP:
		th, body, err := netpkt.ParseTCP(payload)
		if err != nil {
			t.stats.Dropped++
			return nil, netpkt.IP{}
		}
		dst, port, ok := t.matchInbound(h.Proto, th.DstPort)
		if !ok {
			t.stats.Dropped++
			return nil, netpkt.IP{}
		}
		th.DstPort = port
		return t.rebuildTo(h, dst, th.Marshal(body)), dst
	case netpkt.ProtoUDP:
		uh, body, err := netpkt.ParseUDP(payload)
		if err != nil {
			t.stats.Dropped++
			return nil, netpkt.IP{}
		}
		dst, port, ok := t.matchInbound(h.Proto, uh.DstPort)
		if !ok {
			t.stats.Dropped++
			return nil, netpkt.IP{}
		}
		uh.DstPort = port
		return t.rebuildTo(h, dst, uh.Marshal(body)), dst
	case netpkt.ProtoICMP:
		eh, body, err := netpkt.ParseICMPEcho(payload)
		if err != nil || eh.Type != netpkt.ICMPEchoReply {
			t.stats.Dropped++
			return nil, netpkt.IP{}
		}
		f := t.reverse[eh.ID]
		if f == nil || f.key.proto != netpkt.ProtoICMP {
			t.stats.Dropped++
			return nil, netpkt.IP{}
		}
		eh.ID = f.key.guestPt
		return t.rebuildTo(h, f.key.guestIP, eh.Marshal(body)), f.key.guestIP
	default:
		t.stats.Dropped++
		return nil, netpkt.IP{}
	}
}

// matchInbound resolves an inbound destination port via flows then static
// forwards.
func (t *Translator) matchInbound(proto uint8, extPort uint16) (netpkt.IP, uint16, bool) {
	if f := t.reverse[extPort]; f != nil && f.key.proto == proto {
		f.lastUse = t.eng.Now()
		return f.key.guestIP, f.key.guestPt, true
	}
	if fwd, ok := t.forwards[extPort]; ok {
		return fwd.ip, fwd.port, true
	}
	return netpkt.IP{}, 0, false
}

// rebuild re-marshals an outbound packet with the gateway as source.
func (t *Translator) rebuild(h *netpkt.IPv4Header, payload []byte) []byte {
	t.stats.Outbound++
	nh := netpkt.IPv4Header{ID: h.ID, TTL: h.TTL - 1, Proto: h.Proto, Src: t.Gateway, Dst: h.Dst}
	return nh.Marshal(payload)
}

// rebuildTo re-marshals an inbound packet with the guest as destination.
func (t *Translator) rebuildTo(h *netpkt.IPv4Header, dst netpkt.IP, payload []byte) []byte {
	t.stats.Inbound++
	nh := netpkt.IPv4Header{ID: h.ID, TTL: h.TTL - 1, Proto: h.Proto, Src: h.Src, Dst: dst}
	return nh.Marshal(payload)
}

// Expire drops flows idle for longer than maxIdle (the translator's GC,
// called periodically by the network application).
func (t *Translator) Expire(maxIdle sim.Time) int {
	dropped := 0
	now := t.eng.Now()
	for key, f := range t.flows {
		if now-f.lastUse > maxIdle {
			delete(t.flows, key)
			delete(t.reverse, f.extPort)
			dropped++
		}
	}
	return dropped
}
