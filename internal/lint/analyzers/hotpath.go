package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"strings"

	"kite/internal/lint/analysis"
	"kite/internal/lint/loader"
)

// Hotpath proves the repository's zero-allocation contract statically: a
// function whose doc comment carries //kite:hotpath — and every function
// it statically calls inside this module, across package boundaries and
// through interface dispatch (class-hierarchy analysis) — must not
// allocate. The runtime tests (TestForwardPathZeroAlloc,
// TestBlockPathZeroAlloc) sample two concrete paths; this analyzer covers
// every path the compiler can see.
//
// Forbidden operations: make, new, &T{...}, slice/map composite literals,
// closures, string concatenation and string<->[]byte conversions, map
// inserts, appends that can grow, boxing a concrete value into an
// interface, and calls into packages outside the module (which cannot be
// vetted) other than a small pure allowlist.
//
// Three escapes keep the rule honest rather than unusable:
//
//   - The high-water scratch idiom is recognized automatically: an append
//     whose destination is a struct field (`p.free = append(p.free, b)`)
//     or a local resliced from one (`reqs := q.txReqs[:0]; reqs =
//     append(reqs, r)`) allocates only until the scratch reaches its
//     high-water mark, which the runtime tests pin at zero steady-state.
//   - Blocks that terminate by panicking or by returning a non-nil error
//     are cold: steady state never takes them.
//   - //kite:alloc-ok (with a mandatory reason) suppresses one line, and
//     //kite:coldpath excludes a warmup-only function from the descent.
var Hotpath = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "functions marked //kite:hotpath (and their module callees) must not allocate",
	Run:  runHotpath,
}

// extAllowlist holds the non-module packages hot paths may call: vetted
// allocation-free primitives only.
var extAllowlist = map[string]bool{
	"sync/atomic": true,
	"math":        true,
	"math/bits":   true,
}

// extAllowed reports whether one non-module callee is allocation-vetted:
// an allowlisted package, or encoding/binary's fixed-width byte-order
// accessors (Uint16/PutUint64/...; not Read/Write/Append*, which allocate
// or grow).
func extAllowed(fn *types.Func) bool {
	if extAllowlist[fn.Pkg().Path()] {
		return true
	}
	if fn.Pkg().Path() == "encoding/binary" {
		name := fn.Name()
		return strings.HasPrefix(name, "Uint") || strings.HasPrefix(name, "PutUint")
	}
	return false
}

func runHotpath(pass *analysis.Pass) error {
	checked := make(map[*types.Func]bool)
	idx := make(map[*loader.Package]*directiveIndex)
	dirs := func(p *loader.Package) *directiveIndex {
		if idx[p] == nil {
			idx[p] = newDirectiveIndex(p)
		}
		return idx[p]
	}

	for _, file := range pass.Pkg.Files {
		for _, d := range file.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || !funcDirective(decl, "hotpath") {
				continue
			}
			root, ok := pass.Pkg.Info.Defs[decl.Name].(*types.Func)
			if !ok {
				continue
			}
			rootName := root.Name()
			if sig, ok := root.Type().(*types.Signature); ok && sig.Recv() != nil {
				rootName = types.TypeString(sig.Recv().Type(), types.RelativeTo(root.Pkg())) + "." + rootName
			}
			walkReachable(pass.Module, root,
				func(fn *types.Func, fd *analysis.FuncDecl) bool {
					if funcDirective(fd.Decl, "coldpath") {
						return false
					}
					if checked[fn] {
						return true // descend, but do not re-scan the body
					}
					checked[fn] = true
					scanHotBody(pass, fd, dirs(fd.Pkg), rootName)
					return true
				},
				func(from *analysis.FuncDecl, c callee) {
					if extAllowed(c.fn) || c.viaInterface {
						return
					}
					pkgPath := c.fn.Pkg().Path()
					d := dirs(from.Pkg)
					if coldAt(from, c.call.Pos()) || d.suppressed(c.call.Pos(), "alloc-ok") {
						return
					}
					pass.Reportf(c.call.Pos(),
						"hotpath: call to %s.%s, outside the module and not allocation-vetted (reached from %s)",
						pkgPath, c.fn.Name(), rootName)
				},
				nil)
		}
	}
	return nil
}

// coldRanges computes the position intervals of cold blocks in a function:
// if/case bodies that terminate by panicking or by returning a non-nil
// error. Steady-state hot iterations never execute them, so allocations
// there (fmt.Errorf and friends) do not break the contract.
type posRange struct{ from, to token.Pos }

func coldRanges(pkg *loader.Package, decl *ast.FuncDecl) []posRange {
	var out []posRange
	mark := func(stmts []ast.Stmt, from, to token.Pos) {
		if terminatesCold(pkg, stmts) {
			out = append(out, posRange{from, to})
		}
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.IfStmt:
			mark(s.Body.List, s.Body.Pos(), s.Body.End())
			if blk, ok := s.Else.(*ast.BlockStmt); ok {
				mark(blk.List, blk.Pos(), blk.End())
			}
		case *ast.CaseClause:
			mark(s.Body, s.Pos(), s.End())
		}
		return true
	})
	return out
}

func coldAt(fd *analysis.FuncDecl, pos token.Pos) bool {
	for _, r := range coldRanges(fd.Pkg, fd.Decl) {
		if r.from <= pos && pos <= r.to {
			return true
		}
	}
	return false
}

// terminatesCold reports whether a statement list ends in panic(...) or in
// a return carrying a non-nil error.
func terminatesCold(pkg *loader.Package, stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
					return true
				}
			}
		}
	case *ast.ReturnStmt:
		for _, res := range last.Results {
			if isNilIdent(res) {
				continue
			}
			if tv, ok := pkg.Info.Types[res]; ok && isErrorType(tv.Type) {
				return true
			}
		}
	}
	return false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return t != nil && types.Implements(t, errorIface)
}

// scanHotBody reports every allocating operation in one function body,
// modulo the cold-path and directive escapes.
func scanHotBody(pass *analysis.Pass, fd *analysis.FuncDecl, dirs *directiveIndex, root string) {
	pkg := fd.Pkg
	info := pkg.Info
	cold := coldRanges(pkg, fd.Decl)
	isCold := func(pos token.Pos) bool {
		for _, r := range cold {
			if r.from <= pos && pos <= r.to {
				return true
			}
		}
		return false
	}
	report := func(pos token.Pos, what string) {
		if isCold(pos) || dirs.suppressed(pos, "alloc-ok") {
			return
		}
		pass.Reportf(pos, "hotpath: %s in %s (reached from %s)", what, fd.Decl.Name.Name, root)
	}

	sanctionedAppends := highWaterAppends(pkg, fd.Decl)
	scratchOK := func(call *ast.CallExpr) bool { return sanctionedAppends[call] }

	ast.Inspect(fd.Decl.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			scanHotCall(info, e, report, scratchOK, isCold)
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					report(e.Pos(), "heap allocation (&composite literal)")
				}
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[e]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					report(e.Pos(), "slice literal allocation")
				case *types.Map:
					report(e.Pos(), "map literal allocation")
				}
			}
		case *ast.FuncLit:
			report(e.Pos(), "closure allocation")
		case *ast.BinaryExpr:
			if e.Op == token.ADD {
				if tv, ok := info.Types[e]; ok && tv.Value == nil && isStringType(tv.Type) {
					report(e.Pos(), "string concatenation")
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range e.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if tv, ok := info.Types[ix.X]; ok {
						if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
							report(lhs.Pos(), "map insert")
						}
					}
				}
			}
			scanBoxing(info, e.Lhs, e.Rhs, report)
		case *ast.ReturnStmt:
			scanReturnBoxing(pkg, fd.Decl, e, report)
		}
		return true
	})
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// scanHotCall checks one call expression: allocating builtins, allocating
// conversions, and interface boxing of arguments.
func scanHotCall(info *types.Info, call *ast.CallExpr, report func(token.Pos, string),
	scratchOK func(*ast.CallExpr) bool, isCold func(token.Pos) bool) {

	fun := ast.Unparen(call.Fun)

	// Conversions: only those that copy memory allocate.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			dst := tv.Type
			if src, ok := info.Types[call.Args[0]]; ok && src.Value == nil {
				if allocatingConversion(src.Type, dst) {
					report(call.Pos(), "allocating conversion "+types.TypeString(dst, nil)+"(...)")
				}
				if isInterface(dst) && !isInterface(src.Type) && src.Type != types.Typ[types.UntypedNil] {
					report(call.Pos(), "interface boxing (conversion)")
				}
			}
		}
		return
	}

	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				report(call.Pos(), "allocation (make)")
			case "new":
				report(call.Pos(), "allocation (new)")
			case "append":
				if !scratchOK(call) {
					report(call.Pos(), "append outside the high-water scratch idiom")
				}
			case "panic":
				// The panic argument itself is cold by definition.
			}
			return
		}
	}

	// Interface boxing of arguments against the (instantiated) signature.
	tv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= params.Len()-1 && call.Ellipsis == token.NoPos {
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		} else if i < params.Len() {
			pt = params.At(i).Type()
		} else {
			continue
		}
		at, ok := info.Types[arg]
		if !ok || at.Type == types.Typ[types.UntypedNil] {
			continue
		}
		if isInterface(pt) && !isInterface(at.Type) {
			report(arg.Pos(), "interface boxing (argument)")
		}
	}
}

func isInterface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// allocatingConversion reports conversions that copy memory: string <->
// []byte/[]rune.
func allocatingConversion(src, dst types.Type) bool {
	return (isStringType(src) && isByteOrRuneSlice(dst)) ||
		(isByteOrRuneSlice(src) && isStringType(dst))
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}

// scanBoxing flags assignments of a concrete value into an interface
// location.
func scanBoxing(info *types.Info, lhs, rhs []ast.Expr, report func(token.Pos, string)) {
	if len(lhs) != len(rhs) {
		return // multi-value call assignment: types already interface-shaped
	}
	for i := range lhs {
		lt, ok := info.Types[lhs[i]]
		if !ok {
			continue
		}
		rt, ok := info.Types[rhs[i]]
		if !ok || rt.Type == types.Typ[types.UntypedNil] {
			continue
		}
		if isInterface(lt.Type) && !isInterface(rt.Type) {
			report(rhs[i].Pos(), "interface boxing (assignment)")
		}
	}
}

// scanReturnBoxing flags returning a concrete value through an interface
// result (outside cold blocks this boxes on every call).
func scanReturnBoxing(pkg *loader.Package, decl *ast.FuncDecl, ret *ast.ReturnStmt, report func(token.Pos, string)) {
	obj, ok := pkg.Info.Defs[decl.Name].(*types.Func)
	if !ok {
		return
	}
	sig := obj.Type().(*types.Signature)
	if sig.Results().Len() != len(ret.Results) {
		return
	}
	for i, res := range ret.Results {
		rt, ok := pkg.Info.Types[res]
		if !ok || rt.Type == types.Typ[types.UntypedNil] {
			continue
		}
		if isInterface(sig.Results().At(i).Type()) && !isInterface(rt.Type) {
			report(res.Pos(), "interface boxing (return)")
		}
	}
}

// highWaterAppends returns the append calls sanctioned by the repository's
// amortized-scratch idiom:
//
//	p.free = append(p.free, b)          // field append, stored back
//	reqs := q.txReqs[:0]                // local resliced from a field
//	reqs = append(reqs, r)              // ... grows the field's backing
//
// Both only allocate until the backing array reaches its high-water mark;
// the runtime zero-alloc tests pin the steady state at zero.
func highWaterAppends(pkg *loader.Package, decl *ast.FuncDecl) map[*ast.CallExpr]bool {
	out := make(map[*ast.CallExpr]bool)

	// Pass 1: locals that alias persistent storage — initialized or
	// assigned from a field selector (optionally resliced).
	scratch := make(map[types.Object]bool)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Lhs {
			id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
			if !ok {
				continue
			}
			obj := pkg.Info.Defs[id]
			if obj == nil {
				obj = pkg.Info.Uses[id]
			}
			if obj == nil {
				continue
			}
			if aliasesPersistent(as.Rhs[i]) {
				scratch[obj] = true
			}
		}
		return true
	})

	// Pass 2: sanction appends whose destination equals their first
	// argument and whose target is a field or a scratch local.
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "append" {
			return true
		}
		if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
			return true
		}
		dst := ast.Unparen(as.Lhs[0])
		src := ast.Unparen(call.Args[0])
		if types.ExprString(dst) != types.ExprString(src) {
			return true
		}
		switch d := dst.(type) {
		case *ast.SelectorExpr:
			out[call] = true // field append
		case *ast.IndexExpr:
			if _, isSel := ast.Unparen(d.X).(*ast.SelectorExpr); isSel {
				out[call] = true // indexed field append (per-class free lists)
			}
		case *ast.Ident:
			obj := pkg.Info.Uses[d]
			if obj == nil {
				obj = pkg.Info.Defs[d]
			}
			if obj != nil && scratch[obj] {
				out[call] = true
			}
		}
		return true
	})
	return out
}

// aliasesPersistent reports whether an expression denotes (a reslice of) a
// struct field, so a local assigned from it shares the field's backing.
func aliasesPersistent(e ast.Expr) bool {
	e = ast.Unparen(e)
	if sl, ok := e.(*ast.SliceExpr); ok {
		// Any reslice of persistent storage keeps the backing array; the
		// common idiom is f[:0].
		return aliasesPersistent(sl.X)
	}
	if ix, ok := e.(*ast.IndexExpr); ok {
		return aliasesPersistent(ix.X)
	}
	if _, ok := e.(*ast.SelectorExpr); ok {
		return true
	}
	return false
}
