// Package simdet exercises the kitelint determinism analyzer: wall-clock
// reads, the process-global math/rand source, unordered map iteration, and
// unjustified goroutines or sync imports inside a //kite:deterministic
// package.
//
//kite:deterministic
package simdet

import (
	"math/rand"
	"sync" // want `sync primitives order goroutines outside the window barrier`
	"sync/atomic"
	"time"
)

func clock() time.Time {
	return time.Now() // want `reads the wall clock`
}

func roll() int {
	return rand.Intn(6) // want `seeded per-process`
}

func iterate(m map[string]int) int {
	total := 0
	for _, v := range m { // want `map iteration order is nondeterministic`
		total += v
	}
	return total
}

func iterateJustified(m map[string]int) int {
	n := 0
	for range m { //kite:orderok count is order-insensitive
		n++
	}
	return n
}

// Duration arithmetic stays legal: only clock reads are banned.
func window(d time.Duration) time.Duration { return 2 * d }

func spawn(fn func()) {
	go fn() // want `goroutines can leak scheduling into the timeline`
}

func spawnJustified(fn func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { //kite:shardsafe test fixture: joined before the window ends
		defer wg.Done()
		fn()
	}()
	wg.Wait()
}

// Atomic counter adds commute, so sync/atomic stays exempt.
func count(c *atomic.Uint64) { c.Add(1) }

// parkedWorker mirrors the cluster's persistent barrier workers: a
// long-lived goroutine that spins on an atomic epoch, parks on a buffered
// wake channel, and is joined through a WaitGroup at retirement. The
// //kite:shardsafe justification on the spawn is what makes the pattern
// acceptable inside a deterministic package; the epoch/channel machinery
// itself needs no directive (atomics are exempt, channel ops are not
// flagged by simdet — evblock guards them on event-handler paths).
type parkedWorker struct {
	epoch  atomic.Uint64
	wake   chan struct{}
	retire atomic.Bool
}

func runParked(w *parkedWorker, wg *sync.WaitGroup, body func()) {
	wg.Add(1)
	go func() { //kite:shardsafe test fixture: epoch-barrier worker, effects ordered by the merge
		defer wg.Done()
		seen := uint64(0)
		for !w.retire.Load() {
			if e := w.epoch.Load(); e != seen {
				seen = e
				body()
				continue
			}
			<-w.wake // park until the next epoch publish
		}
	}()
}
