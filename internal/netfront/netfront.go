// Package netfront implements the paravirtual network frontend driver that
// runs inside DomU guests. It exposes the netstack.NetIf interface — the
// guest's network stack uses it exactly like a physical NIC — and speaks
// the netif ring protocol to whatever netback serves it (Linux or Kite;
// the frontend is identical in both cases, which is the paper's point:
// guests need no modification, §2.2).
//
// Frames arrive and leave as pooled buffers. Tx grants are persistent:
// each ring slot lazily allocates one page and grants it to the backend
// once, then reuses page and grant for the device's lifetime — the same
// recycling the Rx path always had, and what lets the backend keep
// persistent mappings of our pages (§3.3).
//
// The transport is multi-queue (xen-netfront's multi-queue protocol): the
// frontend reads the backend's "multi-queue-max-queues" advertisement
// during the xenbus handshake, answers with "multi-queue-num-queues", and
// publishes one ring pair + event channel per queue under "queue-N/" keys
// (flat legacy keys when single-queue). Tx frames are steered by a
// deterministic RSS Toeplitz hash over the IPv4 4-tuple so each flow stays
// on one queue and in order; non-IP traffic rides queue 0.
//
// When the rig runs a sharded cluster (Config.Shards), each queue is pinned
// to one cluster shard and one guest vCPU: its ring work, event channel,
// and Rx buffer arena live entirely on that shard, and the only cross-shard
// traffic is the qdisc hand-off from the stack (shard 0) to the queue and
// the delivery of received frames back — both conservative posts riding the
// guest's softirq dispatch latency.
package netfront

import (
	"fmt"

	"kite/internal/framepool"
	"kite/internal/mem"
	"kite/internal/netif"
	"kite/internal/netpkt"
	"kite/internal/netstack"
	"kite/internal/sim"
	"kite/internal/xen"
	"kite/internal/xenbus"
	"kite/internal/xenstore"
)

// txBacklogCap bounds the qdisc backlog (frames) per queue.
const txBacklogCap = 1024

// shardHandoff is the stack<->queue dispatch latency when queues are pinned
// to cluster shards: the cost of handing a frame to another vCPU's softirq
// context. It is also each post's conservative lookahead bound, so it must
// be at least the cluster's lookahead.
const shardHandoff = 2 * sim.Microsecond

// Stats counts frontend activity, aggregated over queues in queue order.
type Stats struct {
	TxFrames, RxFrames uint64
	TxBytes, RxBytes   uint64
	TxRingFull         uint64
	TxErrors           uint64
}

// txSlot is a persistently granted Tx page, reused across frames.
type txSlot struct {
	page     *mem.Page
	ref      xen.GrantRef
	inFlight bool
}

type rxBuf struct {
	page *mem.Page
	ref  xen.GrantRef
}

// queue is one Tx/Rx ring pair with its own event channel, persistent Tx
// slots, posted Rx buffers, and qdisc backlog — the per-queue state real
// netfront keeps in struct netfront_queue.
type queue struct {
	d    *Device
	id   int
	eng  *sim.Engine // this queue's shard engine (the device engine unsharded)
	cpu  *sim.CPU    // pinned guest vCPU when sharded, nil otherwise
	tx   *netif.TxRing
	rx   *netif.RxRing
	port xen.Port

	// txSlots[1..RingSize] are persistently granted Tx pages, preallocated
	// at connect so the steady state never touches the arena or grant table
	// (and the map lookup the old lazy cache paid is gone).
	txSlots [netif.RingSize + 1]txSlot
	txFree  []uint16
	// txBacklog queues frames while this queue's ring is full (the guest's
	// per-queue qdisc); reapTx drains it as slots free up. Each entry holds
	// one buffer reference.
	txBacklog sim.FIFO[*framepool.Buf]
	rxBufs    [netif.RingSize]rxBuf

	// rxArena partitions the frame pool per queue when sharded, so Rx
	// buffers recycle on this queue's shard; nil means the shared pool.
	rxArena *framepool.Arena

	// enqueueF is the cached cross-shard qdisc hand-off target.
	enqueueF func(any)

	// pending holds batch-delivered Tx frames, stamped with their qdisc
	// arrival times, until they mature; replay admits each to the ring at
	// exactly the time a per-frame hand-off post would have delivered it.
	pending sim.FIFO[stamped]
	replay  *sim.Batch

	// stage accumulates one SendBatch call's frames bound for this queue
	// until the carrier is posted. Touched only on the device shard.
	stage *sendBatch

	stats Stats
}

// stamped is one batched Tx frame with its maturity on the queue's clock.
// Each entry holds one buffer reference.
type stamped struct {
	at    sim.Time
	frame *framepool.Buf
}

// sendBatch carries one flush's worth of frames for one queue across the
// shard boundary in a single post, then rides a release post back to the
// device shard's free list.
type sendBatch struct {
	q       *queue
	entries []stamped
}

// Device is one vif frontend instance.
type Device struct {
	eng     *sim.Engine
	dom     *xen.Domain
	bus     *xenbus.Bus
	reg     *netif.Registry
	devID   int
	backDom xen.DomID
	mac     netpkt.MAC
	pool    *framepool.Pool

	frontPath string
	backPath  string

	wantQueues int
	hashSeed   uint64
	rss        netpkt.RSS
	queues     []*queue
	shards     []*sim.Engine
	rxAlive    bool
	started    bool

	recv    func(frame *framepool.Buf)
	recvF   func(any) // cached post target delivering a frame to the stack
	onReady func()
	onDown  func() // carrier loss: the backend disappeared
	ready   bool

	// Batched-send plumbing: recycled carriers plus the cached post targets
	// that run a carrier on its queue's shard and return it here.
	batchFree  []*sendBatch
	runBatchF  func(any)
	batchFreeF func(any)
}

// Config describes a frontend to create.
type Config struct {
	Dom      *xen.Domain
	Bus      *xenbus.Bus
	Registry *netif.Registry
	DevID    int
	BackDom  xen.DomID
	MAC      netpkt.MAC
	// Pool supplies frame buffers for the Rx path (nil for a private pool).
	Pool *framepool.Pool
	// Queues requests a queue count; the handshake negotiates
	// min(Queues, backend's multi-queue-max-queues). 0 means 1.
	Queues int
	// HashSeed seeds the RSS steering hash (shared with the backend through
	// xenstore so both ends agree); 0 selects a deterministic per-device
	// default.
	HashSeed uint64
	// Shards pins queue i's ring processing to Shards[i] (a cluster shard
	// engine) on guest vCPU i; the device engine itself must be shard 0 of
	// the same cluster. The guest needs at least len(Shards)+1 vCPUs so the
	// stack keeps a vCPU of its own. nil runs every queue on the device
	// engine (the classic single-heap mode).
	Shards []*sim.Engine
	// OnReady fires when the device reaches Connected on both ends.
	OnReady func()
}

// New creates the frontend for an already tool-stack-created vif device
// and begins negotiation.
func New(eng *sim.Engine, cfg Config) *Device {
	pool := cfg.Pool
	if pool == nil {
		pool = framepool.New()
	}
	wantQueues := cfg.Queues
	if wantQueues < 1 {
		wantQueues = 1
	}
	if wantQueues > netif.MaxQueues {
		wantQueues = netif.MaxQueues
	}
	seed := cfg.HashSeed &^ (1 << 63) // survives the decimal int round trip
	if seed == 0 {
		seed = 0x6b697465<<16 ^ uint64(cfg.Dom.ID)<<8 ^ uint64(cfg.DevID)
	}
	d := &Device{
		eng:        eng,
		dom:        cfg.Dom,
		bus:        cfg.Bus,
		reg:        cfg.Registry,
		devID:      cfg.DevID,
		backDom:    cfg.BackDom,
		mac:        cfg.MAC,
		pool:       pool,
		wantQueues: wantQueues,
		hashSeed:   seed,
		rss:        netpkt.NewRSS(seed),
		shards:     cfg.Shards,
		onReady:    cfg.OnReady,
	}
	d.recvF = func(a any) {
		if d.recv != nil {
			d.recv(a.(*framepool.Buf))
		}
	}
	d.runBatchF = d.runBatch
	d.batchFreeF = func(a any) {
		d.batchFree = append(d.batchFree, a.(*sendBatch)) //kite:alloc-ok free list grows to the in-flight high-water mark
	}
	d.frontPath = xenbus.FrontendPath(xenbus.DomID(cfg.Dom.ID), xenstore.DevVif, cfg.DevID)
	d.backPath = xenbus.BackendPath(xenbus.DomID(cfg.BackDom), xenstore.DevVif, xenbus.DomID(cfg.Dom.ID), cfg.DevID)
	d.start()
	return d
}

// MAC implements netstack.NetIf.
func (d *Device) MAC() netpkt.MAC { return d.mac }

// SetRecv implements netstack.NetIf. The callback receives one buffer
// reference per frame and owns it.
func (d *Device) SetRecv(fn func(frame *framepool.Buf)) { d.recv = fn }

// SetOnDown registers the carrier-loss callback, invoked when the backend
// disappears (driver domain crash, or teardown while the guest lives on).
// The stack uses it to flush state — queued ARP-pending packets — that
// can never resolve through a dead device.
func (d *Device) SetOnDown(fn func()) { d.onDown = fn }

// Stats returns the counters aggregated over queues in queue order.
func (d *Device) Stats() Stats {
	var s Stats
	for _, q := range d.queues {
		s.TxFrames += q.stats.TxFrames
		s.RxFrames += q.stats.RxFrames
		s.TxBytes += q.stats.TxBytes
		s.RxBytes += q.stats.RxBytes
		s.TxRingFull += q.stats.TxRingFull
		s.TxErrors += q.stats.TxErrors
	}
	return s
}

// NumQueues returns the negotiated queue count (0 before negotiation).
func (d *Device) NumQueues() int { return len(d.queues) }

// Ready reports whether the device is connected end to end.
func (d *Device) Ready() bool { return d.ready }

// start begins the frontend's side of the xenbus handshake: watch the
// backend and allocate/publish rings once it reaches InitWait and its
// queue-count advertisement is readable (the same ordering real netfront
// follows, and what blkfront here always did).
func (d *Device) start() {
	d.bus.OnStateChange(d.backPath, func(s xenbus.State) {
		switch s {
		case xenbus.StateInitWait:
			if !d.started {
				d.initRings()
			}
		case xenbus.StateConnected:
			if !d.ready {
				d.connect()
			}
		case xenbus.StateClosing, xenbus.StateClosed:
			d.backendGone()
		}
	})
}

// initRings negotiates the queue count, allocates per-queue rings and event
// channels, publishes everything, and moves to Initialised.
func (d *Device) initRings() {
	d.started = true
	st := d.bus.Store()
	nq := d.wantQueues
	if max := d.bus.ReadNumQueues(d.backPath, xenstore.KeyMultiQueueMaxQueues); nq > max {
		nq = max
	}

	sharded := len(d.shards) > 0
	if sharded {
		if nq > len(d.shards) {
			panic(fmt.Sprintf("netfront: %d queues but only %d shards", nq, len(d.shards)))
		}
		if d.dom.CPUs.Len() < nq+1 {
			panic(fmt.Sprintf("netfront: sharded guest needs %d vCPUs, has %d", nq+1, d.dom.CPUs.Len()))
		}
	}
	ch := netif.NewChannel(nq)
	d.queues = make([]*queue, nq)
	for i := 0; i < nq; i++ {
		q := &queue{
			d:   d,
			id:  i,
			eng: d.eng,
			tx:  ch.Tx.Queue(i),
			rx:  ch.Rx.Queue(i),
		}
		if sharded {
			// Queue i lives on shard i's engine, on guest vCPU i; the stack
			// keeps the last vCPU. The Rx arena recycles on the same shard.
			// Every stack<->queue dispatch models at least shardHandoff of
			// latency: declare it as the edge bound for the pair.
			q.eng = d.shards[i]
			sim.DeclareLink(d.eng, q.eng, shardHandoff)
			q.cpu = d.dom.CPUs.CPU(i)
			q.cpu.SetEngine(q.eng)
			q.rxArena = d.pool.NewArena()
			q.rxArena.SetHome(q.eng)
			q.replay = sim.NewBatch(q.eng, q.replayPending)
		}
		q.enqueueF = func(a any) { q.enqueue(a.(*framepool.Buf)) }
		q.port = d.dom.AllocUnbound(d.backDom)
		if err := d.dom.SetHandler(q.port, q.onEvent); err != nil {
			panic(fmt.Sprintf("netfront: %v", err))
		}
		if q.cpu != nil {
			d.dom.BindPortCPU(q.port, q.cpu)
		}
		d.queues[i] = q
	}
	d.reg.Publish(d.dom.ID, d.devID, ch)

	if nq == 1 {
		// Legacy flat keys, exactly like a single-queue netfront.
		st.Writef(d.frontPath+"/"+xenstore.KeyTxRingRef, "%d", d.devID*2+1)
		st.Writef(d.frontPath+"/"+xenstore.KeyRxRingRef, "%d", d.devID*2+2)
		st.Writef(d.frontPath+"/"+xenstore.KeyEventChannel, "%d", d.queues[0].port)
	} else {
		d.bus.WriteNumQueues(d.frontPath, nq)
		st.Writef(d.frontPath+"/"+xenstore.KeyMultiQueueHashSeed, "%d", d.hashSeed)
		for i, q := range d.queues {
			qp := xenbus.QueuePath(d.frontPath, i)
			st.Writef(qp+"/"+xenstore.KeyTxRingRef, "%d", d.devID*16+i*2+1)
			st.Writef(qp+"/"+xenstore.KeyRxRingRef, "%d", d.devID*16+i*2+2)
			st.Writef(qp+"/"+xenstore.KeyEventChannel, "%d", q.port)
		}
	}
	st.Write(d.frontPath+"/"+xenstore.KeyMac, d.mac.String())
	d.bus.WriteFeature(d.frontPath, xenstore.KeyRequestRxCopy, true)
	if err := d.bus.SwitchState(d.frontPath, xenbus.StateInitialised); err != nil {
		panic(fmt.Sprintf("netfront: %v", err))
	}
}

// connect finishes the handshake: post every queue's full Rx buffer set and
// go Connected.
func (d *Device) connect() {
	// Page and grant setup touches the guest arena and grant table, both
	// owned by the device shard; after connect the tables are frozen, so
	// queue shards may read them.
	for _, q := range d.queues {
		q.preallocTx()
		for i := 0; i < netif.RingSize; i++ {
			page := d.dom.Arena.MustAlloc()
			ref := d.dom.GrantAccess(d.backDom, page, false)
			q.rxBufs[i] = rxBuf{page: page, ref: ref}
		}
	}
	d.rxAlive = true
	for _, q := range d.queues {
		if q.eng != d.eng {
			// The queue's rings and event channel are owned by its shard:
			// hand the initial Rx post and kick over conservatively.
			d.eng.Post(q.eng, shardHandoff, sim.PriData, postInitialRxArg, q)
		} else {
			q.postInitialRx()
		}
	}
	if err := d.bus.SwitchState(d.frontPath, xenbus.StateConnected); err != nil {
		panic(fmt.Sprintf("netfront: %v", err))
	}
	d.ready = true
	if d.onReady != nil {
		d.onReady()
	}
}

// postInitialRxArg is the long-lived post target for connect-time Rx setup.
var postInitialRxArg = func(a any) { a.(*queue).postInitialRx() }

// postInitialRx fills the Rx ring with the full posted-buffer set and kicks
// the backend. Runs on the queue's shard.
func (q *queue) postInitialRx() {
	for i := 0; i < netif.RingSize; i++ {
		if !q.rx.PushRequest(netif.RxRequest{ID: uint16(i), Ref: q.rxBufs[i].ref}) {
			panic("netfront: fresh rx ring full")
		}
	}
	if q.rx.PushRequestsAndCheckNotify() {
		q.d.dom.Notify(q.port)
	}
}

// preallocTx allocates and grants every persistent Tx page up front, so the
// send path never touches the arena, the grant table, or a growing map. The
// free-id stack is rebuilt each (re)connect, skipping ids still in flight.
func (q *queue) preallocTx() {
	d := q.d
	if q.txFree == nil {
		q.txFree = make([]uint16, 0, netif.RingSize)
	}
	q.txFree = q.txFree[:0]
	for id := netif.RingSize; id >= 1; id-- {
		s := &q.txSlots[id]
		if s.page == nil {
			s.page = d.dom.Arena.MustAlloc()
			s.ref = d.dom.GrantAccess(d.backDom, s.page, true)
		}
		if !s.inFlight {
			q.txFree = append(q.txFree, uint16(id))
		}
	}
}

// backendGone quiesces the device when its backend disappears (driver
// domain crash/restart). Backlogged frames are released; sends fail until
// a new backend connects. Persistent Tx grants stay in place — the same
// slots are reused after a reattach (and EndAccess would fail anyway while
// the backend still holds mappings).
func (d *Device) backendGone() {
	if !d.ready {
		return
	}
	d.ready = false
	d.rxAlive = false
	for _, q := range d.queues {
		for q.txBacklog.Len() > 0 {
			q.txBacklog.Pop().Release()
		}
		for q.pending.Len() > 0 {
			q.pending.Pop().frame.Release()
		}
	}
	if d.onDown != nil {
		d.onDown()
	}
}

// Send implements netstack.NetIf: steer the frame to its queue by RSS flow
// hash, then copy it into a persistently granted page, push a Tx request,
// and kick the backend — on the queue's shard when sharded, via the qdisc
// hand-off post. Send consumes the caller's buffer reference on every path,
// including failures.
//
//kite:hotpath
func (d *Device) Send(frame *framepool.Buf) bool {
	if !d.ready {
		frame.Release()
		return false
	}
	q := d.queues[d.rss.Queue(frame.Bytes(), len(d.queues))]
	if q.eng != d.eng {
		// Cross-shard qdisc hand-off: the queue owns the frame from here.
		// Backpressure is absorbed by the queue's backlog, so the hand-off
		// itself always succeeds.
		d.eng.Post(q.eng, shardHandoff, sim.PriData, q.enqueueF, frame) //kite:alloc-ok pointer boxing does not allocate
		return true
	}
	return q.enqueue(frame)
}

// BatchCapable implements netstack.BatchSender: the stamped batch hand-off
// is only worth a carrier when queues live on other shards — unsharded, Send
// is already a direct call.
func (d *Device) BatchCapable() bool { return len(d.shards) > 0 }

// SendBatch implements netstack.BatchSender: steer every frame of the burst
// to its queue, then cross each shard boundary once — one carrier post per
// queue instead of one qdisc hand-off post per frame. Frames may arrive
// before their stamps mature; the queue shard replays each into the ring at
// exactly stamp+shardHandoff, the time its own per-frame post would have
// landed, so the event timeline is unchanged while the per-frame post and
// merge traffic disappears. Consumes one reference per frame on every path.
//
//kite:hotpath
func (d *Device) SendBatch(frames []netstack.TimedFrame) {
	for i := range frames {
		f := &frames[i]
		if !d.ready {
			f.Frame.Release()
			continue
		}
		q := d.queues[d.rss.Queue(f.Frame.Bytes(), len(d.queues))]
		if q.eng == d.eng {
			q.enqueue(f.Frame)
			continue
		}
		if q.stage == nil {
			q.stage = d.takeBatch(q)
		}
		q.stage.entries = append(q.stage.entries, //kite:alloc-ok entries grow to the burst high-water mark, then recycle
			stamped{at: f.At + shardHandoff, frame: f.Frame})
	}
	for _, q := range d.queues {
		if q.stage == nil {
			continue
		}
		delay := q.stage.entries[0].at - d.eng.Now()
		if delay < shardHandoff {
			delay = shardHandoff
		}
		d.eng.Post(q.eng, delay, sim.PriData, d.runBatchF, q.stage) //kite:alloc-ok pointer boxing does not allocate
		q.stage = nil
	}
}

// takeBatch pops a recycled carrier for q, or builds one with ring-deep
// entry capacity.
func (d *Device) takeBatch(q *queue) *sendBatch {
	if n := len(d.batchFree); n > 0 {
		bt := d.batchFree[n-1]
		d.batchFree = d.batchFree[:n-1]
		bt.q = q
		return bt
	}
	return &sendBatch{q: q, entries: make([]stamped, 0, netif.RingSize)} //kite:alloc-ok carrier set grows to the in-flight high-water mark
}

// runBatch executes a carrier on its queue's shard: move the stamped frames
// onto the queue's pending FIFO, send the carrier home, and admit whatever
// has matured.
func (d *Device) runBatch(a any) {
	bt := a.(*sendBatch)
	q := bt.q
	for i := range bt.entries {
		q.pending.Push(bt.entries[i])
		bt.entries[i] = stamped{}
	}
	bt.entries = bt.entries[:0]
	bt.q = nil
	q.eng.Post(d.eng, shardHandoff, sim.PriRelease, d.batchFreeF, bt) //kite:alloc-ok pointer boxing does not allocate
	q.replayPending()
}

// replayPending admits every matured pending frame to the ring, then
// re-arms one doorbell quantum past the head stamp instead of at the head
// stamp itself. Each replay fire therefore admits a whole quantum's worth
// of frames in one visit — the shard-crossing analogue of xmit_more/IRQ
// coalescing in real pv drivers. A frame is only ever admitted at or after
// its own stamp, so admission never races ahead of guest production; the
// price is up to one quantum of added queueing latency per frame.
func (q *queue) replayPending() {
	now := q.eng.Now()
	for q.pending.Len() > 0 && q.pending.Peek().at <= now {
		q.enqueue(q.pending.Pop().frame)
	}
	if p := q.pending.Peek(); p != nil {
		q.replay.Arm(p.at + shardHandoff)
	}
}

// enqueue runs on the queue's shard: validate the frame, push it into the
// ring (or the qdisc backlog while the ring is full), kick the backend.
func (q *queue) enqueue(frame *framepool.Buf) bool {
	if frame.Len() > mem.PageSize {
		q.stats.TxErrors++
		frame.ReleaseOn(q.eng)
		return false
	}
	if q.tx.Full() {
		if q.txBacklog.Len() >= txBacklogCap {
			q.stats.TxRingFull++
			frame.ReleaseOn(q.eng)
			return false
		}
		q.txBacklog.Push(frame)
		return true
	}
	if !q.pushTx(frame) {
		return false
	}
	if q.tx.PushRequestsAndCheckNotify() {
		q.d.dom.Notify(q.port)
	}
	return true
}

// pushTx copies one frame into a Tx slot and pushes its request, consuming
// the buffer reference. The caller batches the notify check.
func (q *queue) pushTx(frame *framepool.Buf) bool {
	slot, id, ok := q.allocTxSlot()
	if !ok {
		q.stats.TxErrors++
		frame.Release()
		return false
	}
	n := frame.Len()
	slot.page.CopyInto(0, frame.Bytes())
	slot.inFlight = true
	frame.ReleaseOn(q.eng)
	q.tx.PushRequest(netif.TxRequest{ID: id, Ref: slot.ref, Offset: 0, Len: n})
	q.stats.TxFrames++
	q.stats.TxBytes += uint64(n)
	return true
}

// allocTxSlot pops a free persistent Tx slot (preallocated at connect).
func (q *queue) allocTxSlot() (*txSlot, uint16, bool) {
	n := len(q.txFree)
	if n == 0 {
		return nil, 0, false
	}
	id := q.txFree[n-1]
	q.txFree = q.txFree[:n-1]
	return &q.txSlots[id], id, true
}

// onEvent is the queue's interrupt handler: reap Tx completions and deliver
// Rx frames for this queue only.
//
//kite:hotpath
func (q *queue) onEvent() {
	q.reapTx()
	q.reapRx()
}

func (q *queue) reapTx() {
	defer q.drainBacklog()
	for {
		rsp, ok := q.tx.TakeResponse()
		if !ok {
			if q.tx.FinalCheckForResponses() {
				continue
			}
			return
		}
		if rsp.ID == 0 || int(rsp.ID) > netif.RingSize {
			continue // backend answered an unknown id; ignore
		}
		slot := &q.txSlots[rsp.ID]
		if !slot.inFlight {
			continue
		}
		// The slot's page and grant persist; only the id is recycled.
		slot.inFlight = false
		q.txFree = append(q.txFree, rsp.ID)
		if rsp.Status != netif.StatusOK {
			q.stats.TxErrors++
		}
	}
}

func (q *queue) reapRx() {
	d := q.d
	posted := 0
	for {
		rsp, ok := q.rx.TakeResponse()
		if !ok {
			if q.rx.FinalCheckForResponses() {
				continue
			}
			break
		}
		buf := q.rxBufs[rsp.ID%netif.RingSize]
		if rsp.Status == netif.StatusOK && rsp.Len > 0 &&
			rsp.Offset >= 0 && rsp.Len <= framepool.MaxFrame &&
			rsp.Offset+rsp.Len <= mem.PageSize {
			q.stats.RxFrames++
			q.stats.RxBytes += uint64(rsp.Len)
			if d.recv != nil {
				b := q.getRxBuf()
				copy(b.Extend(rsp.Len), buf.page.Data[rsp.Offset:rsp.Offset+rsp.Len])
				if q.eng != d.eng {
					// Deliver to the stack's shard (softirq dispatch).
					q.eng.Post(d.eng, shardHandoff, sim.PriData, d.recvF, b) //kite:alloc-ok pointer boxing does not allocate
				} else {
					d.recv(b)
				}
			}
		}
		// Recycle the same granted page (Linux netfront's page reuse).
		if d.rxAlive && q.rx.PushRequest(netif.RxRequest{ID: rsp.ID, Ref: buf.ref}) {
			posted++
		}
	}
	if posted > 0 && q.rx.PushRequestsAndCheckNotify() {
		d.dom.Notify(q.port)
	}
}

// getRxBuf draws a delivery buffer from the queue's shard-local arena, or
// the shared pool when unsharded.
func (q *queue) getRxBuf() *framepool.Buf {
	if q.rxArena != nil {
		return q.rxArena.Get()
	}
	return q.d.pool.Get()
}

// EventPort returns queue 0's event channel port (read by the backend from
// xenstore during its handshake).
func (d *Device) EventPort() xen.Port {
	if len(d.queues) == 0 {
		return 0
	}
	return d.queues[0].port
}

// drainBacklog pushes queued qdisc frames into freed ring slots.
func (q *queue) drainBacklog() {
	pushed := false
	for q.txBacklog.Len() > 0 && !q.tx.Full() {
		if q.pushTx(q.txBacklog.Pop()) {
			pushed = true
		}
	}
	if pushed && q.tx.PushRequestsAndCheckNotify() {
		q.d.dom.Notify(q.port)
	}
}
