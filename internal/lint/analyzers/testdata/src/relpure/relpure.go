// Package relpure exercises the kitelint PriRelease purity check: handlers
// posted at sim.PriRelease run at the cluster barrier and must be pure
// local bookkeeping — no scheduling, no posting, no concurrency, no
// unvetted calls.
package relpure

import (
	"fmt"
	"sync/atomic"

	"kite/internal/sim"
)

type buf struct {
	pool *pool
	next *buf
}

type pool struct {
	free     []*buf
	recycled atomic.Uint64

	// freeF is the long-lived release handler, bound once below — the
	// analyzer must resolve the field to its assigned literal.
	freeF func(any)
}

// recycleArg is the sanctioned shape: a package-level handler doing pool
// bookkeeping and a counter increment. Clean.
var recycleArg = func(a any) {
	b := a.(*buf)
	b.pool.free = append(b.pool.free, b)
	b.pool.recycled.Add(1)
}

func releaseClean(local, home *sim.Engine, b *buf) {
	local.Post(home, 1, sim.PriRelease, recycleArg, b)
}

// releaseReposts posts an event from inside a release handler: the barrier
// would re-enter the scheduler.
func releaseReposts(local, home *sim.Engine, b *buf) {
	local.Post(home, 1, sim.PriRelease, func(a any) {
		local.Post(home, 1, sim.PriData, recycleArg, a) // want `re-enters the scheduler via sim\.Post`
	}, b)
}

// releaseSchedules wakes the destination shard's timeline directly.
func releaseSchedules(local, home *sim.Engine) {
	local.Post(home, 1, sim.PriRelease, func(any) {
		home.Schedule(0, func() {}) // want `re-enters the scheduler via sim\.Schedule`
	}, nil)
}

// bindField stores a dirty handler in a struct field; the Post site names
// only the field, so resolution must find this assignment.
func bindField(p *pool, local, home *sim.Engine, done chan struct{}) {
	p.freeF = func(a any) {
		done <- struct{}{} // want `sends on a channel`
	}
	local.Post(home, 1, sim.PriRelease, p.freeF, nil)
}

// releaseCallsOut leaves the vetted external surface.
func releaseCallsOut(local, home *sim.Engine, b *buf) {
	local.Post(home, 1, sim.PriRelease, func(a any) {
		fmt.Println("recycled") // want `calls fmt\.Println outside the module`
	}, b)
}

// releaseIndirect launders the impurity through a func value the analyzer
// cannot resolve.
func releaseIndirect(local, home *sim.Engine, cb func()) {
	local.Post(home, 1, sim.PriRelease, func(any) {
		cb() // want `indirect call that cannot be proven pure`
	}, nil)
}

// dataPostsAreNotChecked: PriData handlers go through the inbox and run on
// the shard like any event; relpure does not apply.
func dataPostsAreNotChecked(local, home *sim.Engine) {
	local.Post(home, 1, sim.PriData, func(any) {
		home.Schedule(0, func() {})
	}, nil)
}
