// Package blkback implements the storage backend driver of a driver
// domain — the largest from-scratch component of Kite (Table 1, 1904 LOC).
// A dedicated request thread drains the blkif ring when the event channel
// fires (§3.3); requests resolve their granted segments through a
// persistent-reference cache (avoiding map/unmap hypercalls), consecutive
// segments from one or more requests are batched into single device
// operations, and completions are answered asynchronously so later
// requests never wait on earlier ones.
package blkback

import (
	"fmt"

	"kite/internal/blkif"
	"kite/internal/nvme"
	"kite/internal/sim"
	"kite/internal/xen"
)

// Costs parameterizes the backend per OS, plus feature knobs used both for
// negotiation and the paper's design-choice ablations.
type Costs struct {
	PerRequest  sim.Time
	PerSegment  sim.Time
	WakeLatency sim.Time

	Persistent bool // persistent grant references (§3.3)
	Indirect   bool // indirect segment requests (§3.3)
	Batch      bool // merge consecutive requests into one device op (§3.3)
}

// KiteCosts returns the rumprun storage-domain profile.
func KiteCosts() Costs {
	return Costs{
		PerRequest:  900 * sim.Nanosecond,
		PerSegment:  220 * sim.Nanosecond,
		WakeLatency: 2 * sim.Microsecond,
		Persistent:  true, Indirect: true, Batch: true,
	}
}

// LinuxCosts returns the Ubuntu storage-domain profile (heavier block
// layer and kthread wake path).
func LinuxCosts() Costs {
	return Costs{
		PerRequest:  1100 * sim.Nanosecond,
		PerSegment:  260 * sim.Nanosecond,
		WakeLatency: 9 * sim.Microsecond,
		Persistent:  true, Indirect: true, Batch: true,
	}
}

// Stats counts instance activity.
type Stats struct {
	RingRequests   uint64
	Segments       uint64
	DeviceOps      uint64
	MergedRequests uint64 // requests folded into a previous device op
	PersistentHits uint64 // segment resolutions served from the cache
	Errors         uint64
}

type resolvedSeg struct {
	mapping    *xen.Mapping
	persistent bool
	firstSect  int
	bytes      int
}

type ioReq struct {
	id     uint64
	op     blkif.Op // OpRead/OpWrite/OpFlush after unwrapping indirect
	sector int64    // absolute device sector (translated)
	segs   []resolvedSeg
	bytes  int
	inst   *Instance
}

type deviceOp struct {
	op     blkif.Op
	sector int64
	bytes  int
	reqs   []*ioReq
}

// Instance is one blkback serving one frontend vbd.
type Instance struct {
	eng      *sim.Engine
	dom      *xen.Domain
	frontDom xen.DomID
	devid    int
	name     string
	costs    Costs

	ring *blkif.Ring
	port xen.Port
	dev  *nvme.Device
	base int64 // first sector of this vbd's window on the device
	size int64 // sectors

	thread *sim.Task
	pmaps  map[xen.GrantRef]*xen.Mapping

	// notify coalesces response publication: every respond in a completion
	// burst queues privately, and one wake publishes the lot and sends at
	// most one event-channel notification (§3.3's event coalescing).
	notify *sim.Batch

	dead  bool
	stats Stats
}

// NewInstance creates a connected blkback instance over a sector window of
// the physical device.
func NewInstance(eng *sim.Engine, dom *xen.Domain, frontDom xen.DomID, devid int,
	ch *blkif.Channel, frontPort xen.Port, dev *nvme.Device,
	baseSector, sectors int64, costs Costs) (*Instance, error) {

	inst := &Instance{
		eng: eng, dom: dom, frontDom: frontDom, devid: devid,
		name:  fmt.Sprintf("vbd%d.%d", frontDom, devid),
		costs: costs, ring: ch.Ring, dev: dev,
		base: baseSector, size: sectors,
		pmaps: make(map[xen.GrantRef]*xen.Mapping),
	}
	// Map the ring page.
	dom.CPUs.Charge(dom.Hypervisor().Costs.Base + dom.Hypervisor().Costs.GrantMapPage)
	port, err := dom.BindInterdomain(frontDom, frontPort)
	if err != nil {
		return nil, fmt.Errorf("blkback: %s: %w", inst.name, err)
	}
	inst.port = port
	if err := dom.SetHandler(port, inst.onEvent); err != nil {
		return nil, err
	}
	inst.thread = sim.NewTask(eng, dom.CPUs.CPU(int(frontDom)%dom.CPUs.Len()),
		inst.name+"/req-thread", costs.WakeLatency, inst.drain)
	inst.notify = sim.NewBatch(eng, inst.flushResponses)
	return inst, nil
}

// Name returns vbd<dom>.<dev>.
func (inst *Instance) Name() string { return inst.name }

// Stats returns a snapshot of the counters.
func (inst *Instance) Stats() Stats { return inst.stats }

// ThreadRuns exposes request-thread activity.
func (inst *Instance) ThreadRuns() (wakes, runs uint64) {
	return inst.thread.Wakes(), inst.thread.Runs()
}

// Shutdown quiesces the instance and drops persistent mappings.
func (inst *Instance) Shutdown() {
	if inst.dead {
		return
	}
	inst.dead = true
	_ = inst.dom.Close(inst.port)
	maps := make([]*xen.Mapping, 0, len(inst.pmaps))
	for _, m := range inst.pmaps {
		maps = append(maps, m)
	}
	_ = inst.dom.Hypervisor().UnmapGrantBatch(inst.dom, maps)
	inst.pmaps = map[xen.GrantRef]*xen.Mapping{}
}

// onEvent wakes the request thread (§3.3: the handler itself stays tiny).
func (inst *Instance) onEvent() {
	if inst.dead {
		return
	}
	if inst.ring.RequestAvailable() {
		inst.thread.Wake()
	}
}

// drain is the request thread body.
func (inst *Instance) drain() {
	if inst.dead {
		return
	}
	for {
		var batch []*ioReq
		for {
			req, ok := inst.ring.TakeRequest()
			if !ok {
				break
			}
			inst.stats.RingRequests++
			io, err := inst.parse(req)
			if err != nil {
				inst.stats.Errors++
				inst.respond(req.ID, blkif.StatusError)
				continue
			}
			batch = append(batch, io)
		}
		if len(batch) == 0 {
			if inst.ring.FinalCheckForRequests() {
				continue
			}
			break
		}
		for _, op := range inst.buildOps(batch) {
			inst.submit(op)
		}
	}
}

// parse validates, translates, and resolves one ring request.
func (inst *Instance) parse(req blkif.Request) (*ioReq, error) {
	io := &ioReq{id: req.ID, op: req.Op, inst: inst}
	segs := req.Segs
	if req.Op == blkif.OpIndirect {
		if !inst.costs.Indirect {
			return nil, fmt.Errorf("blkback: indirect not negotiated")
		}
		if req.IndirectSegs > blkif.MaxSegsIndirect {
			return nil, fmt.Errorf("blkback: %d indirect segments exceed limit", req.IndirectSegs)
		}
		io.op = req.Imm
		parsed, err := inst.parseIndirect(req)
		if err != nil {
			return nil, err
		}
		segs = parsed
	} else if len(segs) > blkif.MaxSegsDirect {
		return nil, fmt.Errorf("blkback: %d direct segments exceed limit", len(segs))
	}

	if io.op == blkif.OpFlush {
		return io, nil
	}

	resolved, total, err := inst.resolve(segs)
	if err != nil {
		return nil, err
	}
	io.segs = resolved
	io.bytes = total
	nsect := int64(total / blkif.SectorSize)
	if req.Sector < 0 || req.Sector+nsect > inst.size {
		inst.releaseSegs(resolved)
		return nil, fmt.Errorf("blkback: i/o beyond vbd (sector %d + %d)", req.Sector, nsect)
	}
	io.sector = inst.base + req.Sector
	return io, nil
}

// parseIndirect maps the descriptor pages and decodes the segment list.
func (inst *Instance) parseIndirect(req blkif.Request) ([]blkif.Segment, error) {
	segs := make([]blkif.Segment, 0, req.IndirectSegs)
	for pi, ref := range req.IndirectRefs {
		m, hit, err := inst.mapRef(ref)
		if err != nil {
			return nil, err
		}
		if hit {
			inst.stats.PersistentHits++
		}
		for si := pi * blkif.SegsPerIndirectPage; si < req.IndirectSegs && si < (pi+1)*blkif.SegsPerIndirectPage; si++ {
			segs = append(segs, blkif.GetSegment(m.Page, si%blkif.SegsPerIndirectPage))
		}
		if !inst.costs.Persistent {
			_ = inst.dom.Hypervisor().UnmapGrant(inst.dom, m)
		}
	}
	return segs, nil
}

// mapRef resolves one grant ref through the persistent cache.
func (inst *Instance) mapRef(ref xen.GrantRef) (m *xen.Mapping, cacheHit bool, err error) {
	if inst.costs.Persistent {
		if m := inst.pmaps[ref]; m != nil && m.Live() {
			return m, true, nil
		}
	}
	m, err = inst.dom.Hypervisor().MapGrant(inst.dom, inst.frontDom, ref)
	if err != nil {
		return nil, false, err
	}
	if inst.costs.Persistent {
		inst.pmaps[ref] = m
	}
	return m, false, nil
}

func (inst *Instance) resolve(segs []blkif.Segment) ([]resolvedSeg, int, error) {
	out := make([]resolvedSeg, 0, len(segs))
	total := 0
	for _, s := range segs {
		if s.FirstSect < 0 || s.LastSect >= blkif.SectorsPerPage || s.FirstSect > s.LastSect {
			inst.releaseSegs(out)
			return nil, 0, fmt.Errorf("blkback: bad segment range %d..%d", s.FirstSect, s.LastSect)
		}
		m, hit, err := inst.mapRef(s.Ref)
		if err != nil {
			inst.releaseSegs(out)
			return nil, 0, err
		}
		if hit {
			inst.stats.PersistentHits++
		}
		out = append(out, resolvedSeg{
			mapping: m, persistent: inst.costs.Persistent,
			firstSect: s.FirstSect, bytes: s.Bytes(),
		})
		total += s.Bytes()
		inst.stats.Segments++
	}
	return out, total, nil
}

func (inst *Instance) releaseSegs(segs []resolvedSeg) {
	var toUnmap []*xen.Mapping
	for _, s := range segs {
		if !s.persistent && s.mapping.Live() {
			toUnmap = append(toUnmap, s.mapping)
		}
	}
	_ = inst.dom.Hypervisor().UnmapGrantBatch(inst.dom, toUnmap)
}

// buildOps merges consecutive same-direction requests into single device
// operations when batching is enabled (§3.3).
func (inst *Instance) buildOps(batch []*ioReq) []*deviceOp {
	var ops []*deviceOp
	for _, io := range batch {
		if io.op == blkif.OpFlush {
			ops = append(ops, &deviceOp{op: blkif.OpFlush, reqs: []*ioReq{io}})
			continue
		}
		if inst.costs.Batch && len(ops) > 0 {
			last := ops[len(ops)-1]
			if last.op == io.op && last.sector+int64(last.bytes/blkif.SectorSize) == io.sector {
				last.bytes += io.bytes
				last.reqs = append(last.reqs, io)
				inst.stats.MergedRequests++
				continue
			}
		}
		ops = append(ops, &deviceOp{op: io.op, sector: io.sector, bytes: io.bytes, reqs: []*ioReq{io}})
	}
	return ops
}

// submit issues one device operation and wires its completion to the
// response path.
func (inst *Instance) submit(op *deviceOp) {
	cost := sim.Time(len(op.reqs)) * inst.costs.PerRequest
	for _, io := range op.reqs {
		cost += sim.Time(len(io.segs)) * inst.costs.PerSegment
	}
	inst.dom.CPUs.Charge(cost)
	inst.stats.DeviceOps++

	switch op.op {
	case blkif.OpFlush:
		inst.dev.Flush(func(err error) { inst.complete(op, err) })
	case blkif.OpWrite:
		buf := make([]byte, 0, op.bytes)
		for _, io := range op.reqs {
			for _, s := range io.segs {
				start := s.firstSect * blkif.SectorSize
				buf = append(buf, s.mapping.Page.Data[start:start+s.bytes]...)
			}
		}
		inst.dev.Write(op.sector, buf, func(err error) { inst.complete(op, err) })
	case blkif.OpRead:
		inst.dev.Read(op.sector, op.bytes, func(data []byte, err error) {
			if err == nil {
				off := 0
				for _, io := range op.reqs {
					for _, s := range io.segs {
						start := s.firstSect * blkif.SectorSize
						copy(s.mapping.Page.Data[start:start+s.bytes], data[off:off+s.bytes])
						off += s.bytes
					}
				}
			}
			inst.complete(op, err)
		})
	default:
		inst.complete(op, fmt.Errorf("blkback: unknown op %d", op.op))
	}
}

// complete answers every request covered by a device op.
func (inst *Instance) complete(op *deviceOp, err error) {
	if inst.dead {
		return
	}
	status := int8(blkif.StatusOK)
	if err != nil {
		status = blkif.StatusError
		inst.stats.Errors++
	}
	for _, io := range op.reqs {
		inst.releaseSegs(io.segs)
		inst.respond(io.id, status)
	}
}

func (inst *Instance) respond(id uint64, status int8) {
	if !inst.ring.PushResponse(blkif.Response{ID: id, Status: status}) {
		return // protocol violation by frontend; nothing sane to do
	}
	inst.notify.Arm(inst.eng.Now())
}

// flushResponses publishes every privately queued response and notifies the
// frontend at most once per burst.
func (inst *Instance) flushResponses() {
	if inst.dead {
		return
	}
	if inst.ring.PushResponsesAndCheckNotify() {
		inst.dom.Notify(inst.port)
	}
}
