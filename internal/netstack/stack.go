// Package netstack is the minimal TCP/IP stack used by every endpoint in
// the simulation: the client load-generator host, DomU guests (over
// netfront), and the Kite driver domain's own interface (for ifconfig-style
// addressing and the DHCP daemon VM). It speaks ARP, IPv4 with
// fragmentation, ICMP echo, UDP, and a flow-controlled TCP subset with
// go-back-N retransmission.
//
// The stack charges per-packet and per-byte CPU costs to its owner's vCPUs;
// the difference between a Linux guest (syscall crossings) and a rumprun
// unikernel (function calls) enters the experiments through the Costs
// struct.
package netstack

import (
	"fmt"

	"kite/internal/netpkt"
	"kite/internal/sim"
)

// NetIf is the device interface a stack drives: a physical NIC, a netfront
// device, or a driver-domain VIF.
type NetIf interface {
	MAC() netpkt.MAC
	// Send queues one Ethernet frame; false means the frame was dropped.
	Send(frame []byte) bool
	// SetRecv installs the ingress upcall.
	SetRecv(fn func(frame []byte))
}

// Costs models the OS-dependent software path.
type Costs struct {
	PerPacket sim.Time // IP/driver processing per packet
	PerKB     sim.Time // data-touching cost (checksum, copies) per KiB
	Syscall   sim.Time // app/kernel boundary crossing (0 in a unikernel)
}

// LinuxGuestCosts returns the stack costs of the Ubuntu 18.04 DomU.
func LinuxGuestCosts() Costs {
	return Costs{PerPacket: 900 * sim.Nanosecond, PerKB: 45 * sim.Nanosecond, Syscall: 250 * sim.Nanosecond}
}

// RumprunCosts returns the stack costs of a Kite unikernel domain: no
// user/kernel crossing, slightly leaner per-packet path (NetBSD stack
// without cgroups/netfilter layers).
func RumprunCosts() Costs {
	return Costs{PerPacket: 700 * sim.Nanosecond, PerKB: 45 * sim.Nanosecond, Syscall: 0}
}

// Stats counts stack traffic.
type Stats struct {
	TxPackets, RxPackets uint64
	TxBytes, RxBytes     uint64
	RxDropNoHandler      uint64
	ARPRequests          uint64
	ARPReplies           uint64
}

// UDPPacket is a received datagram handed to a bound handler.
type UDPPacket struct {
	Src     netpkt.IP
	SrcPort uint16
	Dst     netpkt.IP
	Data    []byte
}

// Stack is one endpoint's network stack.
type Stack struct {
	Name string

	eng   *sim.Engine
	cpus  *sim.CPUPool
	ifc   NetIf
	ip    netpkt.IP
	costs Costs
	rng   *sim.Rand

	arp        map[netpkt.IP]netpkt.MAC
	arpPending map[netpkt.IP][][]byte // queued IP packets awaiting resolution
	reasm      *netpkt.Reassembler
	ipID       uint16

	udpBinds map[uint16]func(UDPPacket)
	pingWait map[uint16]pingWaiter

	listeners map[uint16]func(*Conn)
	conns     map[connKey]*Conn
	nextPort  uint16
	nextPing  uint16

	// TCPWindow is the flow-control window offered and used per
	// connection. Defaults to 64 KiB.
	TCPWindow int

	// FIFO watermarks: a real NIC queue and a real softirq queue never
	// reorder frames of one flow, so scheduled completions must be
	// monotonic per direction even when per-frame costs differ.
	txLast, rxLast sim.Time

	stats Stats
}

// execOrdered charges cost to the CPUs and schedules fn at the completion
// time, forced monotonic per direction via the watermark.
func (s *Stack) execOrdered(last *sim.Time, cost sim.Time, fn func()) {
	done := s.cpus.Charge(cost)
	if done < *last {
		done = *last
	}
	*last = done
	s.eng.Schedule(done, fn)
}

type pingWaiter struct {
	sentAt sim.Time
	cb     func(rtt sim.Time)
}

// Config bundles the stack constructor arguments.
type Config struct {
	Name  string
	CPUs  *sim.CPUPool
	Iface NetIf
	IP    netpkt.IP
	Costs Costs
	Seed  uint64
}

// New creates a stack and attaches it to its interface.
func New(eng *sim.Engine, cfg Config) *Stack {
	s := &Stack{
		Name:       cfg.Name,
		eng:        eng,
		cpus:       cfg.CPUs,
		ifc:        cfg.Iface,
		ip:         cfg.IP,
		costs:      cfg.Costs,
		rng:        sim.NewRand(cfg.Seed ^ 0x57ac),
		arp:        make(map[netpkt.IP]netpkt.MAC),
		arpPending: make(map[netpkt.IP][][]byte),
		reasm:      netpkt.NewReassembler(),
		udpBinds:   make(map[uint16]func(UDPPacket)),
		pingWait:   make(map[uint16]pingWaiter),
		listeners:  make(map[uint16]func(*Conn)),
		conns:      make(map[connKey]*Conn),
		nextPort:   33000,
		TCPWindow:  64 << 10,
	}
	cfg.Iface.SetRecv(s.rxFrame)
	return s
}

// IP returns the stack's address.
func (s *Stack) IP() netpkt.IP { return s.ip }

// Engine returns the simulation engine.
func (s *Stack) Engine() *sim.Engine { return s.eng }

// CPUs returns the vCPU pool the stack charges.
func (s *Stack) CPUs() *sim.CPUPool { return s.cpus }

// Costs returns the stack's cost model (apps charge Syscall through it).
func (s *Stack) Costs() Costs { return s.costs }

// Stats returns a snapshot of the counters.
func (s *Stack) Stats() Stats { return s.stats }

// SeedARP pre-populates the ARP table (static neighbour entry).
func (s *Stack) SeedARP(ip netpkt.IP, mac netpkt.MAC) { s.arp[ip] = mac }

// SetIface swaps the underlying device (a vif replugged after a driver
// domain restart). The ARP cache is flushed: the bridge behind the new
// backend has no state for us.
func (s *Stack) SetIface(dev NetIf) {
	s.ifc = dev
	dev.SetRecv(s.rxFrame)
	s.arp = make(map[netpkt.IP]netpkt.MAC)
	s.arpPending = make(map[netpkt.IP][][]byte)
}

func (s *Stack) dataCost(n int) sim.Time {
	// A few percent of per-packet jitter (cache/TLB luck) so repeated runs
	// under different seeds show the small RSDs of Table 4.
	base := s.costs.PerPacket + sim.Time(n)*s.costs.PerKB/1024
	return s.rng.Jitter(base, 0.04)
}

// sendIP routes one IP payload: ARP-resolves, fragments, and transmits.
// Returns the number of frames handed to the device (0 if queued on ARP).
func (s *Stack) sendIP(proto uint8, dst netpkt.IP, payload []byte) {
	s.ipID++
	h := netpkt.IPv4Header{ID: s.ipID, TTL: 64, Proto: proto, Src: s.ip, Dst: dst}
	pkts := netpkt.FragmentIPv4(h, payload, netpkt.MTU)
	for _, pkt := range pkts {
		s.sendIPPacket(dst, pkt)
	}
}

func (s *Stack) sendIPPacket(dst netpkt.IP, pkt []byte) {
	var dmac netpkt.MAC
	if dst == netpkt.BroadcastIP {
		dmac = netpkt.Broadcast
	} else {
		mac, ok := s.arp[dst]
		if !ok {
			s.arpPending[dst] = append(s.arpPending[dst], pkt)
			s.sendARPRequest(dst)
			return
		}
		dmac = mac
	}
	f := netpkt.Frame{Dst: dmac, Src: s.ifc.MAC(), EtherType: netpkt.EtherTypeIPv4, Payload: pkt}
	raw := f.Marshal()
	s.stats.TxPackets++
	s.stats.TxBytes += uint64(len(raw))
	s.execOrdered(&s.txLast, s.dataCost(len(raw)), func() { s.ifc.Send(raw) })
}

func (s *Stack) sendARPRequest(target netpkt.IP) {
	s.stats.ARPRequests++
	a := netpkt.ARP{Op: netpkt.ARPRequest, SenderMAC: s.ifc.MAC(), SenderIP: s.ip, TargetIP: target}
	f := netpkt.Frame{Dst: netpkt.Broadcast, Src: s.ifc.MAC(), EtherType: netpkt.EtherTypeARP, Payload: a.Marshal()}
	raw := f.Marshal()
	s.execOrdered(&s.txLast, s.costs.PerPacket, func() { s.ifc.Send(raw) })
}

// rxFrame is the device ingress upcall.
func (s *Stack) rxFrame(raw []byte) {
	s.stats.RxPackets++
	s.stats.RxBytes += uint64(len(raw))
	s.execOrdered(&s.rxLast, s.dataCost(len(raw)), func() { s.handleFrame(raw) })
}

func (s *Stack) handleFrame(raw []byte) {
	f, err := netpkt.ParseFrame(raw)
	if err != nil {
		return
	}
	if f.Dst != s.ifc.MAC() && f.Dst != netpkt.Broadcast {
		return // not for us (promiscuous reception filtered here)
	}
	switch f.EtherType {
	case netpkt.EtherTypeARP:
		s.handleARP(f.Payload)
	case netpkt.EtherTypeIPv4:
		s.handleIPv4(f.Payload)
	}
}

func (s *Stack) handleARP(body []byte) {
	a, err := netpkt.ParseARP(body)
	if err != nil {
		return
	}
	// Opportunistic learning.
	s.arp[a.SenderIP] = a.SenderMAC
	s.flushARPPending(a.SenderIP)
	if a.Op == netpkt.ARPRequest && a.TargetIP == s.ip {
		s.stats.ARPReplies++
		reply := netpkt.ARP{
			Op: netpkt.ARPReply, SenderMAC: s.ifc.MAC(), SenderIP: s.ip,
			TargetMAC: a.SenderMAC, TargetIP: a.SenderIP,
		}
		f := netpkt.Frame{Dst: a.SenderMAC, Src: s.ifc.MAC(), EtherType: netpkt.EtherTypeARP, Payload: reply.Marshal()}
		raw := f.Marshal()
		s.execOrdered(&s.txLast, s.costs.PerPacket, func() { s.ifc.Send(raw) })
	}
}

func (s *Stack) flushARPPending(ip netpkt.IP) {
	queued := s.arpPending[ip]
	if len(queued) == 0 {
		return
	}
	delete(s.arpPending, ip)
	for _, pkt := range queued {
		s.sendIPPacket(ip, pkt)
	}
}

func (s *Stack) handleIPv4(body []byte) {
	h, payload, err := netpkt.ParseIPv4(body)
	if err != nil {
		return
	}
	if h.Dst != s.ip && h.Dst != netpkt.BroadcastIP {
		return
	}
	full, done := s.reasm.Push(h, payload)
	if !done {
		return
	}
	switch h.Proto {
	case netpkt.ProtoICMP:
		s.handleICMP(h, full)
	case netpkt.ProtoUDP:
		s.handleUDP(h, full)
	case netpkt.ProtoTCP:
		s.handleTCP(h, full)
	}
}

func (s *Stack) handleICMP(h *netpkt.IPv4Header, body []byte) {
	e, payload, err := netpkt.ParseICMPEcho(body)
	if err != nil {
		return
	}
	switch e.Type {
	case netpkt.ICMPEchoRequest:
		reply := netpkt.ICMPEcho{Type: netpkt.ICMPEchoReply, ID: e.ID, Seq: e.Seq}
		s.sendIP(netpkt.ProtoICMP, h.Src, reply.Marshal(payload))
	case netpkt.ICMPEchoReply:
		if w, ok := s.pingWait[e.ID]; ok {
			delete(s.pingWait, e.ID)
			w.cb(s.eng.Now() - w.sentAt)
		}
	}
}

// Ping sends an ICMP echo request with a payload of the given size and
// invokes cb with the round-trip time when the reply arrives.
func (s *Stack) Ping(dst netpkt.IP, payloadSize int, cb func(rtt sim.Time)) {
	s.nextPing++
	id := s.nextPing
	s.pingWait[id] = pingWaiter{sentAt: s.eng.Now(), cb: cb}
	e := netpkt.ICMPEcho{Type: netpkt.ICMPEchoRequest, ID: id, Seq: 1}
	s.cpus.Charge(s.costs.Syscall)
	s.sendIP(netpkt.ProtoICMP, dst, e.Marshal(make([]byte, payloadSize)))
}

func (s *Stack) handleUDP(h *netpkt.IPv4Header, body []byte) {
	u, payload, err := netpkt.ParseUDP(body)
	if err != nil {
		return
	}
	fn := s.udpBinds[u.DstPort]
	if fn == nil {
		s.stats.RxDropNoHandler++
		return
	}
	// Hand the payload across the socket boundary.
	s.cpus.Charge(s.costs.Syscall)
	fn(UDPPacket{Src: h.Src, SrcPort: u.SrcPort, Dst: h.Dst, Data: payload})
}

// BindUDP installs a datagram handler on a local port.
func (s *Stack) BindUDP(port uint16, fn func(UDPPacket)) error {
	if _, taken := s.udpBinds[port]; taken {
		return fmt.Errorf("netstack: udp port %d already bound on %s", port, s.Name)
	}
	s.udpBinds[port] = fn
	return nil
}

// UnbindUDP releases a port.
func (s *Stack) UnbindUDP(port uint16) { delete(s.udpBinds, port) }

// SendUDP transmits one datagram (fragmenting if needed).
func (s *Stack) SendUDP(dst netpkt.IP, dstPort, srcPort uint16, payload []byte) {
	s.cpus.Charge(s.costs.Syscall)
	u := netpkt.UDPHeader{SrcPort: srcPort, DstPort: dstPort}
	s.sendIP(netpkt.ProtoUDP, dst, u.Marshal(payload))
}

// EphemeralPort returns a fresh local port.
func (s *Stack) EphemeralPort() uint16 {
	s.nextPort++
	if s.nextPort < 32768 {
		s.nextPort = 32768
	}
	return s.nextPort
}
