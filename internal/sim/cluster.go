package sim

// This file is the parallel deterministic event core: a Cluster partitions
// one simulation into per-shard Engines (one heap each), executes them in
// conservative lookahead windows, and merges cross-shard effects at a
// deterministic barrier. The design is classic conservative parallel DES
// (Chandy-Misra-Bryant specialized to fixed minimum link latencies):
//
//   - Every cross-shard interaction travels as a *post* with an explicit
//     delay >= the declared (src,dst) edge latency (or the cluster-wide
//     lookahead when no edges are declared). Physical latencies (NIC wire +
//     propagation delay, event-channel upcall latency, NVMe command fetch)
//     give each edge a natural lower bound, so posts model real hand-off
//     delays rather than artificial slack.
//   - A window runs every shard independently up to its *own* exclusive
//     horizon: the minimum over all other active shards j of
//     next(j) + dist(j, i), where dist is the min-plus closure of the edge
//     matrix (the cheapest chain of posts that could carry an effect from
//     j to i). Any post created inside the window matures at or beyond the
//     destination's horizon, so shards never observe each other mid-window:
//     the parallel execution is race-free *by construction* and
//     bit-identical to the serial execution of the same windows.
//   - A shard no active shard can reach (dist == infinity, or nothing else
//     active) runs *free* — no horizon at all — until it stages a data
//     post, at which point the destination gains a future event that could
//     boomerang back, so the sprint ends at the next barrier. This
//     subsumes the old sole-active express path.
//   - At the barrier, outboxes are merged into per-shard inboxes ordered by
//     the total (timestamp, priority, source shard, source sequence) key,
//     so merge order never depends on goroutine scheduling. Barriers that
//     staged no posts are *fused*: the next window starts immediately with
//     no merge work at all.
//
// Worker goroutines are an execution detail, not a semantic one: a Cluster
// produces the same event timeline at any worker count and any GOMAXPROCS,
// which the determinism matrix in internal/experiments locks in under the
// race detector. With SetWorkers(n > 1) the cluster keeps one persistent
// goroutine per shard range, parked between windows: the per-window cost is
// an atomic epoch publish and (only when a worker went to sleep) a channel
// token, instead of goroutine creation + scheduler wakeup per window.
//
// Each shard also owns a partitioned RNG (splitmix-derived from the cluster
// seed and the shard index), so stochastic elements bound to a shard draw
// from a stream that is independent of how other shards interleave.

import (
	"fmt"
	"runtime"
	"sync"        //kite:shardsafe WaitGroup only joins retiring barrier workers between windows
	"sync/atomic" //kite:shardsafe epoch/pending publication at the window barrier only
)

// Cross-shard post priorities: at an equal timestamp, lower runs first.
// Data hand-offs outrank buffer recycling so a frame is always delivered
// before the pool slot it vacated is reused.
//
// PriRelease posts are resource returns (buffer recycling, carrier
// reclamation): order-insensitive among themselves and free of timeline
// effects. The barrier executes them directly in merge order instead of
// queueing one inbox event per return — returning a resource one window
// early only ever *adds* availability, so the event timeline is unchanged
// while the per-frame recycle traffic costs no shard events at all. A
// release fn must therefore be pure local bookkeeping: it may not read the
// clock, schedule, or post.
const (
	PriData    uint8 = 100
	PriRelease uint8 = 200
)

// postRec is one staged cross-shard event. Records live in outbox/inbox
// slices whose spare capacity is recycled, so steady-state posting does not
// allocate.
type postRec struct {
	at  Time
	pri uint8
	src uint16 // source shard (merge tie-break)
	seq uint64 // per-source post sequence (final tie-break)
	fn  func(any)
	arg any
}

// before is the deterministic merge order: (timestamp, priority, source
// shard, source sequence). The key is unique — two posts can never compare
// equal — so the merged order is total and independent of arrival order.
func (p *postRec) before(o *postRec) bool {
	if p.at != o.at {
		return p.at < o.at
	}
	if p.pri != o.pri {
		return p.pri < o.pri
	}
	if p.src != o.src {
		return p.src < o.src
	}
	return p.seq < o.seq
}

// timeMax is the "no bound" sentinel: an undeclared edge distance and the
// free-sprint horizon.
const timeMax = Time(1<<63 - 1)

// barrierSpins bounds how long a persistent worker busy-waits (yielding to
// the scheduler each spin) for the next window before parking on its wake
// channel. Small on purpose: with more runnable workers than cores, parking
// promptly is what keeps the barrier from degrading into a Gosched storm.
const barrierSpins = 32

// shardWorker is one persistent barrier worker owning a fixed contiguous
// shard range. The epoch word each worker spins on sits alone on its cache
// line so the publisher's stores never collide with another worker's spin.
type shardWorker struct {
	_     [64]byte
	epoch atomic.Uint64 // latest window epoch published to this worker
	_     [56]byte
	wake  chan struct{} // one-token semaphore reviving a parked worker
	lo    int           // shard range [lo, hi) this worker executes
	hi    int
	_     [64]byte
}

// Cluster coordinates a set of shard Engines under conservative lookahead
// windows. Shard 0 is the "home" shard by convention (setup, devices, and
// anything not pinned elsewhere); calling Run/Step/RunUntil on any shard
// engine drives the whole cluster.
type Cluster struct {
	shards    []*Engine
	rngs      []*Rand
	lookahead Time
	workers   int // max goroutines per window; <=1 means serial

	// Per-edge lookahead (flattened n x n, src-major). edge holds the
	// declared minimum direct post delay per (src,dst) pair — timeMax for
	// pairs with no declared edge — and dist its min-plus closure: the
	// cheapest chain of posts that can carry an effect from src to dst.
	// Both stay nil until the first DeclareEdge, in which case every pair
	// falls back to the uniform cluster lookahead.
	edge      []Time
	dist      []Time
	edgeDirty bool // closure needs recomputing before the next window

	windows uint64 // execution windows run
	fused   uint64 // windows whose barrier staged nothing (no merge work)
	posted  uint64 // cross-shard posts merged

	// Window scratch, written by the driving goroutine before each epoch
	// publish and read-only while shard goroutines run.
	nexts     []Time // per-shard next local event (timeMax = idle)
	horizons  []Time // per-shard exclusive horizon (0 = idle, timeMax = run free)
	winLimit  Time   // exclusive upper bound for the window (RunUntil)
	winBudget uint64 // per-shard event budget for the window

	// Persistent barrier workers (spawned lazily at the first parallel
	// window, re-partitioned when SetWorkers changes, parked in between).
	ws         []*shardWorker
	spawnedFor int // worker count ws was partitioned for
	mainHi     int // the driving goroutine runs shards [0, mainHi)
	epoch      uint64
	retire     atomic.Bool
	wg         sync.WaitGroup
	_          [64]byte
	pending    atomic.Int32 // workers still running the current window
	_          [60]byte
	doneCh     chan struct{}
}

// NewCluster builds n shard engines sharing one virtual clock, with the
// given conservative lookahead (the minimum cross-shard post delay) and a
// seed for the partitioned per-shard RNGs. Workers defaults to 1 (serial);
// SetWorkers raises it.
func NewCluster(n int, lookahead Time, seed uint64) *Cluster {
	if n < 1 {
		panic("sim: cluster needs at least one shard")
	}
	if lookahead <= 0 {
		panic("sim: cluster lookahead must be positive")
	}
	c := &Cluster{
		lookahead: lookahead,
		workers:   1,
		nexts:     make([]Time, n),
		horizons:  make([]Time, n),
	}
	for i := 0; i < n; i++ {
		e := NewEngine()
		e.cluster = c
		e.shard = i
		// The outbox header array is written by its shard mid-window; the
		// guard slots at both ends keep one shard's append bookkeeping off
		// any cache line another shard's headers live on.
		const guard = 3 // 3 slice headers = 72 B >= one cache line
		e.outbox = make([][]postRec, n+2*guard)[guard : guard+n]
		c.shards = append(c.shards, e)
		// Partitioned RNG: each shard's stream is derived from (seed, shard)
		// through the splitmix increment, so streams are decorrelated and
		// stable no matter how many shards run or in what order.
		c.rngs = append(c.rngs, NewRand(seed^(uint64(i+1)*0x9e3779b97f4a7c15)))
	}
	c.mainHi = n
	return c
}

// Shards returns the shard count.
func (c *Cluster) Shards() int { return len(c.shards) }

// Shard returns shard i's engine.
func (c *Cluster) Shard(i int) *Engine { return c.shards[i] }

// Rand returns shard i's partitioned RNG.
func (c *Cluster) Rand(i int) *Rand { return c.rngs[i] }

// Lookahead returns the minimum cross-shard post delay.
func (c *Cluster) Lookahead() Time { return c.lookahead }

// Windows returns how many execution windows have run.
func (c *Cluster) Windows() uint64 { return c.windows }

// Fused returns how many of those windows ended in an empty barrier — no
// shard staged a post, so the merge was skipped and the next window fused
// straight on.
func (c *Cluster) Fused() uint64 { return c.fused }

// Posted returns how many cross-shard posts have been merged.
func (c *Cluster) Posted() uint64 { return c.posted }

// DeclareEdge declares that posts from shard src to shard dst always carry
// a delay of at least min (a physical link/device latency, never below the
// cluster lookahead). The first declaration flips the cluster into
// edge-matrix mode: pairs that are never declared have *no* edge — posting
// on one panics — which is exactly what lets unrelated shards run past each
// other. Effects can still chain through intermediate shards, so horizons
// use the min-plus closure of the declared matrix, recomputed lazily before
// the next window. Declaring the same pair again keeps the minimum.
func (c *Cluster) DeclareEdge(src, dst int, min Time) {
	n := len(c.shards)
	if src < 0 || src >= n || dst < 0 || dst >= n || src == dst {
		panic(fmt.Sprintf("sim: DeclareEdge(%d, %d) outside cluster of %d shards", src, dst, n))
	}
	if min < c.lookahead {
		panic(fmt.Sprintf("sim: edge latency %v below cluster lookahead %v", min, c.lookahead))
	}
	if c.edge == nil {
		c.edge = make([]Time, n*n)
		for i := range c.edge {
			c.edge[i] = timeMax
		}
	}
	if min < c.edge[src*n+dst] {
		c.edge[src*n+dst] = min
		c.edgeDirty = true
	}
}

// DeclareLink declares a bidirectional edge between the shards of a and b
// with the given minimum hand-off latency. It is a no-op when the engines
// share a shard (or are not clustered), so pinning code can declare its
// latencies unconditionally.
func DeclareLink(a, b *Engine, min Time) {
	c := a.cluster
	if c == nil || b.cluster != c || a.shard == b.shard {
		return
	}
	c.DeclareEdge(a.shard, b.shard, min)
	c.DeclareEdge(b.shard, a.shard, min)
}

// EdgeDist returns the effective minimum latency for effects travelling
// from shard src to shard dst (the closure over declared edges), or the
// uniform lookahead when no edges are declared. timeMax means unreachable.
func (c *Cluster) EdgeDist(src, dst int) Time {
	if c.edge == nil {
		return c.lookahead
	}
	if c.edgeDirty {
		c.refreshEdges()
	}
	return c.dist[src*len(c.shards)+dst]
}

// refreshEdges recomputes the min-plus closure of the edge matrix
// (Floyd-Warshall; shard counts are single digits in practice). All edge
// weights are positive, so self-distances stay at timeMax and are never
// consulted — a shard's horizon comes only from *other* shards.
//
//kite:coldpath runs only after DeclareEdge dirtied the matrix, i.e. during topology setup
func (c *Cluster) refreshEdges() {
	n := len(c.shards)
	if c.dist == nil {
		c.dist = make([]Time, n*n)
	}
	copy(c.dist, c.edge)
	for k := 0; k < n; k++ {
		krow := c.dist[k*n : k*n+n]
		for i := 0; i < n; i++ {
			if i == k {
				continue
			}
			ik := c.dist[i*n+k]
			if ik == timeMax {
				continue
			}
			row := c.dist[i*n : i*n+n]
			for j := 0; j < n; j++ {
				if j == k || krow[j] == timeMax {
					continue
				}
				if d := ik + krow[j]; d < row[j] {
					row[j] = d
				}
			}
		}
	}
	c.edgeDirty = false
}

// SetWorkers bounds the goroutines used per window. n <= 1 executes shards
// serially in shard order (and retires any parked workers); higher values
// partition the shards across n-1 persistent worker goroutines plus the
// driving goroutine. The event timeline is identical either way.
func (c *Cluster) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	if n > len(c.shards) {
		n = len(c.shards)
	}
	c.workers = n
	if n <= 1 {
		c.stopWorkers()
	}
}

// Workers returns the configured per-window worker bound.
func (c *Cluster) Workers() int { return c.workers }

// ensureWorkers (re)spawns the persistent workers to match the configured
// worker count: the shards are split into `workers` contiguous ranges, the
// driving goroutine keeps range 0 (which always contains shard 0) and each
// remaining range gets one parked goroutine for the cluster's lifetime.
//
//kite:coldpath runs only when SetWorkers changed the worker count since the last window
//kite:synccore worker (re)spawn: channel and WaitGroup plumbing for the barrier itself
func (c *Cluster) ensureWorkers() {
	if c.spawnedFor == c.workers {
		return
	}
	c.stopWorkers()
	n := len(c.shards)
	k := c.workers
	c.doneCh = make(chan struct{}, 1)
	lo := 0
	for r := 0; r < k; r++ {
		size := n / k
		if r < n%k {
			size++
		}
		hi := lo + size
		if r == 0 {
			c.mainHi = hi
		} else {
			w := &shardWorker{wake: make(chan struct{}, 1), lo: lo, hi: hi}
			c.ws = append(c.ws, w)
			c.wg.Add(1)
			go c.workerLoop(w) //kite:shardsafe persistent barrier worker: runs disjoint shard ranges between epoch publishes; all cross-shard effects are ordered by the merge
		}
		lo = hi
	}
	c.spawnedFor = c.workers
}

// stopWorkers retires the persistent workers (SetWorkers shrink or
// re-partition) and waits for them to exit.
//
//kite:synccore worker retirement: epoch publish + wake + join are the barrier protocol
func (c *Cluster) stopWorkers() {
	if len(c.ws) == 0 {
		c.spawnedFor = 0
		c.mainHi = len(c.shards)
		return
	}
	c.retire.Store(true)
	c.epoch++
	for _, w := range c.ws {
		w.epoch.Store(c.epoch)
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
	c.wg.Wait()
	c.retire.Store(false)
	c.ws = nil
	c.spawnedFor = 0
	c.mainHi = len(c.shards)
}

// workerLoop is the persistent barrier worker: spin briefly for the next
// epoch, park on the wake channel if it does not arrive, run the owned
// shard range, then check in at the barrier. The epoch store (publisher)
// and load (here) carry the happens-before edge for the window inputs; the
// pending count and done channel carry it back for the window's results.
//
// The wake channel holds at most one token and the publisher always
// deposits one after advancing the epoch, so a worker that re-parks after a
// stale token can never miss a window.
//
//kite:synccore the parking/epoch handshake IS the synchronization core; shard code runs inside runShardRange
func (c *Cluster) workerLoop(w *shardWorker) {
	defer c.wg.Done()
	var last uint64
	for {
		spins := 0
		for w.epoch.Load() == last {
			if spins < barrierSpins {
				spins++
				runtime.Gosched()
				continue
			}
			<-w.wake
			spins = 0
		}
		last = w.epoch.Load()
		if c.retire.Load() {
			return
		}
		c.runShardRange(w.lo, w.hi)
		if c.pending.Add(-1) == 0 {
			c.doneCh <- struct{}{}
		}
	}
}

// runShardRange executes one window for shards [lo, hi): each runs to its
// own horizon (or sprints free when nothing active can reach it), recording
// its event count in windowDone for the barrier to collect.
func (c *Cluster) runShardRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		s := c.shards[i]
		switch h := c.horizons[i]; {
		case h == 0:
			s.windowDone = 0
		case h == timeMax:
			s.windowDone = s.runFree(c.winLimit, c.winBudget)
		default:
			s.windowDone = s.runTo(h, c.winBudget)
		}
	}
}

// runWindowShards executes the current window on every shard — inline when
// serial, via the persistent workers when parallel. On return every shard's
// windowDone is visible to the driving goroutine.
//
//kite:synccore window dispatch: epoch publish, wake tokens, and the done-channel join
func (c *Cluster) runWindowShards() {
	n := len(c.shards)
	if c.workers <= 1 || n == 1 {
		c.runShardRange(0, n)
		return
	}
	c.ensureWorkers()
	c.epoch++
	c.pending.Store(int32(len(c.ws)))
	for _, w := range c.ws {
		w.epoch.Store(c.epoch)
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
	c.runShardRange(0, c.mainHi)
	<-c.doneCh
}

// computeHorizons snapshots every shard's next local event and derives the
// per-shard horizons for the next window: shard i may run to the minimum
// over other active shards j of next(j) + dist(j, i), exclusive, capped at
// limit. Shards no active shard can reach get the free-sprint marker
// (timeMax); idle shards get 0. It returns the globally earliest event time
// and the number of active shards. The horizons are a pure function of the
// pre-window event state, so serial and parallel execution see identical
// windows.
func (c *Cluster) computeHorizons(limit Time) (Time, int) {
	if c.edgeDirty {
		c.refreshEdges()
	}
	n := len(c.shards)
	earliest := timeMax
	active := 0
	for i, s := range c.shards {
		if t, ok := s.nextLocal(); ok {
			c.nexts[i] = t
			active++
			if t < earliest {
				earliest = t
			}
		} else {
			c.nexts[i] = timeMax
		}
	}
	if active == 0 || earliest >= limit {
		return earliest, active
	}
	for i := range c.shards {
		if c.nexts[i] == timeMax {
			c.horizons[i] = 0
			continue
		}
		h := timeMax
		if c.dist == nil {
			// Uniform lookahead: every other active shard bounds i equally.
			for j := 0; j < n; j++ {
				if j == i || c.nexts[j] == timeMax {
					continue
				}
				if v := c.nexts[j] + c.lookahead; v < h {
					h = v
				}
			}
		} else {
			for j := 0; j < n; j++ {
				if j == i || c.nexts[j] == timeMax {
					continue
				}
				d := c.dist[j*n+i]
				if d == timeMax {
					continue
				}
				if v := c.nexts[j] + d; v < h {
					h = v
				}
			}
		}
		if h != timeMax && h > limit {
			h = limit
		}
		c.horizons[i] = h
	}
	return earliest, active
}

// runLoop is the window engine behind Run/RunUntil/RunCapped: compute
// horizons, run the window, merge if anything was staged (fuse the barrier
// if not), repeat until the cluster drains past limit or the budget is
// spent. budget caps the events executed approximately: each shard sees the
// full remaining budget within a window.
//
//kite:hotpath
func (c *Cluster) runLoop(limit Time, budget uint64) uint64 {
	var total uint64
	for total < budget {
		earliest, active := c.computeHorizons(limit)
		if active == 0 || earliest >= limit {
			break
		}
		c.windows++
		c.winLimit = limit
		c.winBudget = budget - total
		c.runWindowShards()
		var done, staged uint64
		for _, s := range c.shards {
			done += s.windowDone
			staged += s.stagedPosts
		}
		total += done
		if staged != 0 {
			c.merge()
		} else {
			c.fused++
			if done == 0 {
				// The earliest shard's horizon always lies beyond its next
				// event, so an empty window means the horizon math broke.
				panic("sim: cluster window made no progress")
			}
		}
	}
	return total
}

// merge is the deterministic barrier: every outbox drains into its
// destination shard's inbox, and each inbox tail is re-sorted by the total
// (timestamp, priority, source shard, source sequence) key. Keys are unique,
// so the resulting order does not depend on which shard finished first.
// Only called when at least one shard staged posts; source shards that
// staged nothing are skipped wholesale, and runs of data posts are copied
// with bulk appends (releases execute at the barrier itself, in the same
// deterministic (dst, src, seq) visit order, and never become events).
func (c *Cluster) merge() {
	for di, dst := range c.shards {
		grew := false
		for _, src := range c.shards {
			if src.stagedPosts == 0 {
				continue
			}
			ob := src.outbox[di]
			if len(ob) == 0 {
				continue
			}
			if !grew {
				grew = true
				// First inbound posts for this destination: recycle the
				// consumed prefix. Consumed slots were already zeroed by
				// stepLocal, so a fully drained inbox resets for free; a
				// long partially-consumed prefix is compacted down.
				if dst.inboxHead == len(dst.inbox) {
					dst.inbox = dst.inbox[:0]
					dst.inboxHead = 0
				} else if dst.inboxHead >= 64 {
					n := copy(dst.inbox, dst.inbox[dst.inboxHead:])
					for i := n; i < len(dst.inbox); i++ {
						dst.inbox[i] = postRec{} // drop fn/arg refs from vacated slots
					}
					dst.inbox = dst.inbox[:n]
					dst.inboxHead = 0
				}
			}
			start := -1
			for i := range ob {
				p := &ob[i]
				if p.pri != PriRelease {
					if start < 0 {
						start = i
					}
					continue
				}
				if start >= 0 {
					dst.inbox = append(dst.inbox, ob[start:i]...) //kite:alloc-ok inbox grows to the burst high-water mark, then recycles
					start = -1
				}
				// Resource returns run at the barrier itself; no shard
				// goroutine is live here, so touching the destination
				// shard's free lists is race-free.
				p.fn(p.arg)
			}
			if start >= 0 {
				dst.inbox = append(dst.inbox, ob[start:]...) //kite:alloc-ok inbox grows to the burst high-water mark, then recycles
			}
			c.posted += uint64(len(ob))
			clear(ob)
			src.outbox[di] = ob[:0]
		}
		if grew {
			sortPosts(dst.inbox[dst.inboxHead:])
		}
	}
	for _, s := range c.shards {
		s.stagedPosts = 0
	}
}

// sortPosts is an allocation-free insertion sort. Inboxes are short (a
// window's worth of hand-offs) and largely sorted already, which is the
// regime where insertion sort beats sort.Slice without its closure
// allocation.
func sortPosts(ps []postRec) {
	for i := 1; i < len(ps); i++ {
		p := ps[i]
		j := i - 1
		for j >= 0 && p.before(&ps[j]) {
			ps[j+1] = ps[j]
			j--
		}
		ps[j+1] = p
	}
}

// nextTime returns the globally earliest pending event time.
func (c *Cluster) nextTime() (Time, bool) {
	var best Time
	found := false
	for _, s := range c.shards {
		if t, ok := s.nextLocal(); ok && (!found || t < best) {
			best, found = t, true
		}
	}
	return best, found
}

// Run executes windows until no events remain anywhere.
func (c *Cluster) Run() {
	c.runLoop(timeMax, ^uint64(0))
}

// Step executes the single globally earliest pending event and merges the
// barrier immediately — the window protocol with a one-event window. Setup
// code (RunReady) uses this; it produces the same timeline as Run.
func (c *Cluster) Step() bool {
	var best *Engine
	var bt Time
	for _, s := range c.shards {
		if t, ok := s.nextLocal(); ok && (best == nil || t < bt) {
			best, bt = s, t
		}
	}
	if best == nil {
		return false
	}
	best.stepLocal(bt + 1)
	var staged uint64
	for _, s := range c.shards {
		staged += s.stagedPosts
	}
	if staged != 0 {
		c.merge()
	}
	return true
}

// RunUntil executes every event with timestamp <= t, then advances all
// shard clocks to exactly t.
func (c *Cluster) RunUntil(t Time) {
	c.runLoop(t+1, ^uint64(0))
	for _, s := range c.shards {
		if s.now < t {
			s.now = t
		}
	}
}

// RunCapped runs until the cluster drains or ~maxEvents have been executed,
// reporting whether it drained. Like Engine.RunCapped it is a livelock
// guard, not a precise budget: windows may overshoot slightly.
func (c *Cluster) RunCapped(maxEvents uint64) bool {
	c.runLoop(timeMax, maxEvents)
	_, ok := c.nextTime()
	return !ok
}

// Pending sums scheduled-but-unexecuted events across all shards.
func (c *Cluster) Pending() int {
	n := 0
	for _, s := range c.shards {
		n += len(s.heap) + (len(s.inbox) - s.inboxHead)
	}
	return n
}

// Processed sums executed events across all shards.
func (c *Cluster) Processed() uint64 {
	var n uint64
	for _, s := range c.shards {
		n += s.processed
	}
	return n
}

// Post stages fn(arg) to run on dst after delay, carrying pri as the
// equal-timestamp merge rank. delay must be at least the declared (src,dst)
// edge latency — the cluster lookahead when no edges are declared — and
// that bound is exactly what lets shards run a window without peeking at
// each other. Posting is allocation-free in steady state: the record is a
// value in a recycled outbox slice, fn should be a long-lived func value,
// and arg a pointer (pointer-to-interface conversions do not allocate).
//
//kite:hotpath
func (e *Engine) Post(dst *Engine, delay Time, pri uint8, fn func(any), arg any) {
	c := e.cluster
	if c == nil || dst.cluster != c {
		panic("sim: Post requires both engines in one cluster")
	}
	min := c.lookahead
	if c.edge != nil {
		min = c.edge[e.shard*len(c.shards)+dst.shard]
		if min == timeMax {
			panic(fmt.Sprintf("sim: post from shard %d to shard %d without a declared edge", e.shard, dst.shard))
		}
	}
	if delay < min {
		panic(fmt.Sprintf("sim: post delay %v below cluster lookahead %v", delay, min))
	}
	e.postSeq++
	e.stagedPosts++
	if pri != PriRelease {
		e.dataPosts++
	}
	e.outbox[dst.shard] = append(e.outbox[dst.shard], //kite:alloc-ok outbox grows to the burst high-water mark, then recycles
		postRec{at: e.now + delay, pri: pri, src: uint16(e.shard), seq: e.postSeq, fn: fn, arg: arg})
}

// Cluster returns the cluster this engine belongs to, or nil for a
// standalone engine.
func (e *Engine) Cluster() *Cluster { return e.cluster }

// ShardID returns this engine's shard index within its cluster (0 for a
// standalone engine).
func (e *Engine) ShardID() int { return e.shard }

// ProcessedLocal returns the events executed by this engine alone — the
// per-shard view of Processed, which reports the whole cluster.
func (e *Engine) ProcessedLocal() uint64 { return e.processed }

// nextLocal returns the earliest locally pending event time (heap or
// inbox).
func (e *Engine) nextLocal() (Time, bool) {
	hasHeap := len(e.heap) > 0
	hasIn := e.inboxHead < len(e.inbox)
	switch {
	case hasHeap && hasIn:
		ht, it := e.heap[0].at, e.inbox[e.inboxHead].at
		if it < ht {
			return it, true
		}
		return ht, true
	case hasHeap:
		return e.heap[0].at, true
	case hasIn:
		return e.inbox[e.inboxHead].at, true
	}
	return 0, false
}

// stepLocal executes the earliest local event strictly before horizon,
// reporting whether one ran. At an equal timestamp the local heap runs
// before relayed posts: a shard's own causally earlier work precedes
// foreign hand-offs landing at the same instant.
func (e *Engine) stepLocal(horizon Time) bool {
	useHeap := false
	useIn := false
	var at Time
	if len(e.heap) > 0 && e.heap[0].at < horizon {
		useHeap = true
		at = e.heap[0].at
	}
	if e.inboxHead < len(e.inbox) {
		if p := &e.inbox[e.inboxHead]; p.at < horizon && (!useHeap || p.at < at) {
			useIn = true
			useHeap = false
		}
	}
	switch {
	case useHeap:
		e.stepHeap()
	case useIn:
		p := e.inbox[e.inboxHead]
		e.inbox[e.inboxHead] = postRec{} // release fn/arg from the recycled slot
		e.inboxHead++
		e.now = p.at
		e.processed++
		p.fn(p.arg)
	default:
		return false
	}
	return true
}

// runTo executes local events strictly before horizon, up to budget, and
// returns how many ran. Once the inbox is drained — almost immediately, an
// inbox only ever holds last window's hand-offs — the loop drops into a
// heap-only fast path as tight as the standalone engine's, so shard
// execution pays the merge bookkeeping only while merged posts remain.
func (e *Engine) runTo(horizon Time, budget uint64) uint64 {
	var done uint64
	for e.inboxHead < len(e.inbox) {
		if done >= budget || !e.stepLocal(horizon) {
			return done
		}
		done++
	}
	for done < budget && len(e.heap) > 0 && e.heap[0].at < horizon {
		e.stepHeap()
		done++
	}
	return done
}

// runFree executes local events with timestamps strictly before limit, up
// to budget, stopping after any event that stages a data post. Only shards
// with the free-sprint horizon run it: the no-peeking guarantee shards
// normally get from the lookahead horizon instead comes from no *active*
// shard having a post path to this one — and the sprint ends at the first
// data post because the destination then holds a future event that could
// chain back.
func (e *Engine) runFree(limit Time, budget uint64) uint64 {
	var done uint64
	seq := e.dataPosts
	for e.inboxHead < len(e.inbox) {
		if done >= budget || e.dataPosts != seq || !e.stepLocal(limit) {
			return done
		}
		done++
	}
	for done < budget && e.dataPosts == seq && len(e.heap) > 0 && e.heap[0].at < limit {
		e.stepHeap()
		done++
	}
	return done
}
