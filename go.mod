module kite

go 1.22
