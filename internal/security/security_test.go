package security

import (
	"testing"

	"kite/internal/guestos"
)

func TestTable3AllMitigatedByKite(t *testing.T) {
	net := guestos.KiteNetworkDomain()
	stor := guestos.KiteStorageDomain()
	cves := Table3CVEs()
	if len(cves) != 11 {
		t.Fatalf("Table 3 has %d CVEs, want 11", len(cves))
	}
	for _, cve := range cves {
		if !Mitigated(cve, net) {
			t.Errorf("%s not mitigated by Kite network domain", cve.ID)
		}
		if !Mitigated(cve, stor) {
			t.Errorf("%s not mitigated by Kite storage domain", cve.ID)
		}
	}
}

func TestTable3AppliesToUbuntu(t *testing.T) {
	u := guestos.UbuntuDriverDomain()
	applicable := 0
	for _, cve := range Table3CVEs() {
		if Applies(cve, u) {
			applicable++
		}
	}
	// Most Table 3 CVEs use syscalls a Linux driver domain cannot shed
	// (clone, execve, rename, ...). The compat_sys_* ones need the 32-bit
	// path, which our 64-bit inventory doesn't list.
	if applicable < 8 {
		t.Fatalf("only %d of 11 Table 3 CVEs apply to Ubuntu, want >= 8", applicable)
	}
}

func TestToolstackCVEsNeedComponents(t *testing.T) {
	u := guestos.UbuntuDriverDomain()
	k := guestos.KiteNetworkDomain()
	for _, cve := range ToolstackCVEs() {
		if !Applies(cve, u) {
			t.Errorf("%s should apply to the Ubuntu driver domain", cve.ID)
		}
		if Applies(cve, k) {
			t.Errorf("%s should not apply to Kite", cve.ID)
		}
	}
}

func TestFamilyGate(t *testing.T) {
	// A Linux CVE whose syscalls Kite *does* keep is still inapplicable:
	// Kite runs NetBSD-derived code.
	cve := CVE{ID: "TEST", Family: guestos.FamilyLinux, Syscalls: []string{"read"}}
	if Applies(cve, guestos.KiteNetworkDomain()) {
		t.Fatal("Linux CVE applied to NetBSD-derived unikernel")
	}
	if !Applies(cve, guestos.UbuntuDriverDomain()) {
		t.Fatal("CVE with retained syscall should apply to Ubuntu")
	}
}

func TestDriverCVETrend(t *testing.T) {
	years := DriverCVEsByYear()
	if len(years) < 5 {
		t.Fatal("need multiple years for Fig 1a")
	}
	for i := 1; i < len(years); i++ {
		if years[i].Linux <= years[i-1].Linux {
			t.Fatal("Fig 1a Linux driver CVEs must rise year over year")
		}
		if years[i].Year != years[i-1].Year+1 {
			t.Fatal("years not consecutive")
		}
	}
}

func TestGenerateCodeDeterministic(t *testing.T) {
	a := GenerateCode(4096, 7)
	b := GenerateCode(4096, 7)
	c := GenerateCode(4096, 8)
	if string(a) != string(b) {
		t.Fatal("same seed produced different code")
	}
	if string(a) == string(c) {
		t.Fatal("different seeds produced identical code")
	}
	if len(a) != 4096 {
		t.Fatalf("generated %d bytes", len(a))
	}
}

func TestScanFindsKnownGadget(t *testing.T) {
	// pop rdi-ish (0x5F); ret — a classic.
	code := []byte{0x90, 0x5F, 0xC3}
	counts := ScanGadgets(code)
	if counts[CatDataMove] == 0 {
		t.Fatal("pop;ret gadget not found")
	}
	if counts[CatRET] != 1 {
		t.Fatalf("ret count = %d, want 1", counts[CatRET])
	}
	if counts[CatNOP] == 0 {
		t.Fatal("nop;pop;ret gadget not classified as NOP-led")
	}
}

func TestScanRejectsUndecodable(t *testing.T) {
	// 0x06 is not in the decode table; no gadget can start there.
	code := []byte{0x06, 0xC3}
	counts := ScanGadgets(code)
	if TotalGadgets(counts) != 1 { // just the bare ret
		t.Fatalf("gadgets = %d, want 1 (bare ret)", TotalGadgets(counts))
	}
}

func TestScanDepthLimit(t *testing.T) {
	// Six single-byte instructions before ret: starts deeper than 5
	// instructions must not count.
	code := []byte{0x90, 0x90, 0x90, 0x90, 0x90, 0x90, 0xC3}
	counts := ScanGadgets(code)
	// Valid gadget starts: offsets 1..5 (5 gadgets) + bare ret.
	if counts[CatNOP] != 5 {
		t.Fatalf("nop gadgets = %d, want 5", counts[CatNOP])
	}
}

func TestNoEmbeddedRetGadgets(t *testing.T) {
	// ret; nop; ret — a "gadget" spanning the first ret is not a gadget.
	code := []byte{0xC3, 0x90, 0xC3}
	counts := ScanGadgets(code)
	if counts[CatRET] != 2 || counts[CatNOP] != 1 {
		t.Fatalf("counts = ret:%d nop:%d, want 2/1", counts[CatRET], counts[CatNOP])
	}
}

func TestFig1bOrderingAndRatios(t *testing.T) {
	profiles := guestos.GadgetScanProfiles()
	totals := make([]uint64, len(profiles))
	for i, p := range profiles {
		totals[i] = TotalGadgets(GadgetCounts(p))
	}
	// Kite smallest; every Linux config larger; ordering strict.
	for i := 1; i < len(totals); i++ {
		if totals[i] <= totals[i-1] {
			t.Fatalf("gadget totals not increasing: %v", totals)
		}
	}
	// Fig 5: even the minimal default config has ~4x Kite's gadgets.
	ratio := float64(totals[1]) / float64(totals[0])
	if ratio < 3 || ratio > 6 {
		t.Fatalf("default/kite gadget ratio = %.1f, want ~4", ratio)
	}
	// Fig 1b: full-distro kernels reach millions of gadgets.
	if totals[len(totals)-1] < 1_000_000 {
		t.Fatalf("ubuntu gadgets = %d, want millions", totals[len(totals)-1])
	}
}

func TestGadgetCountsDeterministic(t *testing.T) {
	p := guestos.GadgetScanProfiles()[0]
	a := GadgetCounts(p)
	b := GadgetCounts(p)
	if a != b {
		t.Fatal("gadget counts not reproducible")
	}
}

func TestAllCategoriesPresentInLargeScan(t *testing.T) {
	counts := ScanGadgets(GenerateCode(1<<20, 42))
	for cat := Category(0); cat < NumCategories; cat++ {
		if counts[cat] == 0 {
			t.Errorf("category %v absent from a 1 MiB scan", cat)
		}
	}
}
